//! Second bottom-up phase: the costed DP over enlarged plan lists
//! (paper §3.6).
//!
//! Ordinary Selinger-style dynamic programming — all join methods, all
//! distribution (streaming) alternatives — plus the Bloom filter legality
//! rules:
//!
//! * a pending filter whose δ is fully covered by the build side **resolves**
//!   there; the join must be a hash join and gains a [`BloomBuild`];
//! * a pending filter whose δ *partially* overlaps the build side is illegal
//!   (Fig. 3b), **unless** the build side is itself a Bloom-filter sub-plan
//!   whose own pending δ's cover the outstanding relations (Fig. 3c) — the
//!   chained filter transfers the missing relations' filtering;
//! * a pending filter disjoint from the build side propagates unchanged;
//! * a build-side pending filter whose δ overlaps the probe side can never
//!   resolve (its build relations ended up on the apply side), so the
//!   combination is discarded;
//! * on resolution "the cardinality estimate simply becomes the original
//!   estimate for the joined relation".

use std::collections::HashMap;
use std::sync::Arc;

use bfq_common::{BfqError, ColumnId, RelSet, Result};
use bfq_cost::{BfAssumption, Cost, CostModel, Estimator};
use bfq_expr::Expr;
use bfq_plan::{
    BloomBuild, Distribution, ExchangeKind, JoinKind, PhysicalNode, PhysicalPlan, QueryBlock,
};

use crate::costing::ProgramSpec;
use crate::enumerate::{enumerate_sets, pred_rels, splits, Split};
use crate::subplan::{PendingBf, PlanList, SubPlan};
use crate::OptimizerConfig;

/// Statistics from the costed DP.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Phase2Stats {
    /// Relation sets processed.
    pub sets: usize,
    /// (outer sub-plan, inner sub-plan) combinations examined.
    pub pairs: usize,
    /// Sub-plans generated (before plan-list pruning).
    pub generated: usize,
    /// Sub-plans surviving in plan lists at the end.
    pub kept: usize,
}

/// Join algorithms enumerated by the DP.
const ALGOS: [JoinAlgoChoice; 3] = [
    JoinAlgoChoice::Hash,
    JoinAlgoChoice::Merge,
    JoinAlgoChoice::NestLoop,
];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JoinAlgoChoice {
    Hash,
    Merge,
    NestLoop,
}

/// One distribution alternative for a join.
struct DistOpt {
    outer_ex: Option<ExchangeKind>,
    inner_ex: Option<ExchangeKind>,
    out_dist: Distribution,
    single_stream: bool,
    build_replicated: bool,
}

/// Run the costed bottom-up DP. `initial` holds the per-relation plan lists
/// from [`crate::costing::initial_plan_lists`]; `program` is the block's
/// semijoin program when one was built (its lane is enumerated alongside
/// the per-join lane and the cheapest complete plan of either wins).
/// Returns the winning sub-plan for the full relation set.
pub fn run_dp(
    block: &QueryBlock,
    est: &Estimator<'_>,
    model: &CostModel,
    config: &OptimizerConfig,
    initial: Vec<PlanList>,
    program: Option<&ProgramSpec>,
) -> Result<(SubPlan, Phase2Stats)> {
    let n = block.num_rels();
    let mut stats = Phase2Stats::default();
    let mut lists: HashMap<u64, PlanList> = HashMap::new();
    for (rel, list) in initial.into_iter().enumerate() {
        lists.insert(RelSet::single(rel).0, list);
    }

    let sets = enumerate_sets(block);
    for set in sets {
        if set.len() < 2 {
            continue;
        }
        stats.sets += 1;
        let mut list = PlanList::new();
        for split in splits(block, set) {
            let (Some(outer_list), Some(inner_list)) =
                (lists.get(&split.outer.0), lists.get(&split.inner.0))
            else {
                continue;
            };
            for outer_sp in outer_list.plans() {
                for inner_sp in inner_list.plans() {
                    stats.pairs += 1;
                    try_join(
                        block, est, model, &split, outer_sp, inner_sp, program, &mut list,
                        &mut stats,
                    );
                }
            }
        }
        if config.h7_enabled {
            list.apply_heuristic7(config.h7_max_subplans);
        }
        stats.kept += list.len();
        lists.insert(set.0, list);
    }

    let full = RelSet::all(n);
    let best = lists
        .get(&full.0)
        .and_then(|l| l.best_resolved())
        .cloned()
        .ok_or_else(|| BfqError::Plan("no complete plan found for query block".into()))?;
    Ok((best, stats))
}

/// Classify the pending filters of a candidate join. Returns `None` when the
/// combination is illegal.
struct PendingSplit {
    resolved: Vec<PendingBf>,
    remaining: Vec<PendingBf>,
}

fn classify_pendings(
    outer_sp: &SubPlan,
    inner_sp: &SubPlan,
    outer_set: RelSet,
    inner_set: RelSet,
) -> Option<PendingSplit> {
    let mut resolved = Vec::new();
    let mut remaining = Vec::new();
    let inner_cover = inner_sp
        .pending
        .iter()
        .fold(RelSet::EMPTY, |acc, p| acc.union(p.bf.delta));
    for p in &outer_sp.pending {
        if p.bf.delta.is_subset_of(inner_set) {
            resolved.push(p.clone());
        } else if p.bf.delta.overlaps(inner_set) {
            // Fig. 3b/3c: partial coverage is illegal unless the inner side's
            // own pending filters transfer the outstanding relations.
            let outstanding = p.bf.delta.difference(inner_set);
            if outstanding.is_subset_of(inner_cover) {
                resolved.push(p.clone());
            } else {
                return None;
            }
        } else {
            remaining.push(p.clone());
        }
    }
    for p in &inner_sp.pending {
        if p.bf.delta.overlaps(outer_set) {
            // A δ relation landed on the apply side: unresolvable forever.
            return None;
        }
        remaining.push(p.clone());
    }
    Some(PendingSplit {
        resolved,
        remaining,
    })
}

fn hash_dist_opts(
    outer: &SubPlan,
    inner: &SubPlan,
    okeys: &[ColumnId],
    ikeys: &[ColumnId],
    kind: JoinKind,
) -> Vec<DistOpt> {
    let mut opts = Vec::new();
    if outer.dist == Distribution::Single && inner.dist == Distribution::Single {
        opts.push(DistOpt {
            outer_ex: None,
            inner_ex: None,
            out_dist: Distribution::Single,
            single_stream: true,
            build_replicated: false,
        });
    }
    // Repartition both sides on the join keys (skipping sides already
    // partitioned exactly right — the paper's partition-aligned case).
    let outer_aligned = outer.dist == Distribution::Hash(okeys.to_vec());
    let inner_aligned = inner.dist == Distribution::Hash(ikeys.to_vec());
    opts.push(DistOpt {
        outer_ex: (!outer_aligned).then(|| ExchangeKind::Repartition(okeys.to_vec())),
        inner_ex: (!inner_aligned).then(|| ExchangeKind::Repartition(ikeys.to_vec())),
        out_dist: Distribution::Hash(okeys.to_vec()),
        single_stream: false,
        build_replicated: false,
    });
    // Broadcast the build side (paper §3.9 case 1).
    if outer.dist != Distribution::Replicated {
        let single = outer.dist == Distribution::Single;
        opts.push(DistOpt {
            outer_ex: None,
            inner_ex: Some(ExchangeKind::Broadcast),
            out_dist: outer.dist.clone(),
            single_stream: single,
            build_replicated: !single,
        });
    }
    // Broadcast the probe side (paper §3.9 case 2) — inner joins only:
    // duplicated probe rows would corrupt semi/anti/outer semantics.
    if kind == JoinKind::Inner
        && matches!(
            inner.dist,
            Distribution::AnyPartitioned | Distribution::Hash(_)
        )
    {
        opts.push(DistOpt {
            outer_ex: Some(ExchangeKind::Broadcast),
            inner_ex: None,
            out_dist: Distribution::AnyPartitioned,
            single_stream: false,
            build_replicated: false,
        });
    }
    opts
}

fn simple_dist_opts(outer: &SubPlan, inner: &SubPlan, replicate_inner: bool) -> Vec<DistOpt> {
    let mut opts = Vec::new();
    if outer.dist == Distribution::Single && inner.dist == Distribution::Single {
        opts.push(DistOpt {
            outer_ex: None,
            inner_ex: None,
            out_dist: Distribution::Single,
            single_stream: true,
            build_replicated: false,
        });
    }
    if replicate_inner && outer.dist != Distribution::Replicated {
        let single = outer.dist == Distribution::Single;
        opts.push(DistOpt {
            outer_ex: None,
            inner_ex: Some(ExchangeKind::Broadcast),
            out_dist: outer.dist.clone(),
            single_stream: single,
            build_replicated: !single,
        });
    }
    opts
}

fn wrap_exchange(plan: &Arc<PhysicalPlan>, kind: ExchangeKind, rows: f64) -> Arc<PhysicalPlan> {
    let dist = match &kind {
        ExchangeKind::Broadcast => Distribution::Replicated,
        ExchangeKind::Repartition(cols) => Distribution::Hash(cols.clone()),
        ExchangeKind::Gather => Distribution::Single,
    };
    PhysicalPlan::new(
        PhysicalNode::Exchange {
            input: plan.clone(),
            kind,
        },
        plan.layout.clone(),
        rows,
        dist,
    )
}

fn exchange_cost(model: &CostModel, kind: &Option<ExchangeKind>, rows: f64) -> Cost {
    match kind {
        None => Cost::ZERO,
        Some(ExchangeKind::Broadcast) => model.broadcast(rows),
        Some(ExchangeKind::Repartition(_)) => model.repartition(rows),
        Some(ExchangeKind::Gather) => model.gather(rows),
    }
}

#[allow(clippy::too_many_arguments)]
fn try_join(
    block: &QueryBlock,
    est: &Estimator<'_>,
    model: &CostModel,
    split: &Split,
    outer_sp: &SubPlan,
    inner_sp: &SubPlan,
    program: Option<&ProgramSpec>,
    list: &mut PlanList,
    stats: &mut Phase2Stats,
) {
    // The per-join and program lanes never mix: a program-lane scan's row
    // count assumes its scheduled reducers ran, which only holds when the
    // whole plan is the program's probe pass.
    if outer_sp.program != inner_sp.program {
        return;
    }
    let Some(pending) = classify_pendings(outer_sp, inner_sp, split.outer, split.inner) else {
        return;
    };
    let requires_hash = !pending.resolved.is_empty();
    let s_all = split.outer.union(split.inner);

    // Oriented equi keys.
    let clauses = block.clauses_between(split.outer, split.inner);
    let mut okeys = Vec::with_capacity(clauses.len());
    let mut ikeys = Vec::with_capacity(clauses.len());
    for c in &clauses {
        if split.outer.contains(c.left_rel) {
            okeys.push(c.left);
            ikeys.push(c.right);
        } else {
            okeys.push(c.right);
            ikeys.push(c.left);
        }
    }
    if requires_hash && okeys.is_empty() {
        return; // resolution needs a hash join, which needs equi keys
    }

    // Complex predicates that become evaluable exactly at this join.
    let extra_preds: Vec<Expr> = block
        .complex_preds
        .iter()
        .filter(|p| {
            let rels = pred_rels(block, p);
            rels.is_subset_of(s_all)
                && !rels.is_subset_of(split.outer)
                && !rels.is_subset_of(split.inner)
        })
        .cloned()
        .collect();
    let extra = Expr::conjunction(extra_preds);

    // Output cardinality under the surviving assumptions. In the program
    // lane the assumptions are the scheduled reducers still pruning this
    // set (§3.5's pass-fraction model applied per active tree edge).
    let remaining_bfs: Vec<BfAssumption> = if outer_sp.program {
        program
            .map(|spec| spec.active_assumptions(s_all))
            .unwrap_or_default()
    } else {
        pending.remaining.iter().map(|p| p.bf.clone()).collect()
    };
    let rows_out = est.joined_rows(s_all, &remaining_bfs);

    // Bloom builds for resolved filters.
    let builds: Vec<BloomBuild> = pending
        .resolved
        .iter()
        .map(|p| BloomBuild {
            filter: p.id,
            column: p.bf.build_col,
            expected_ndv: est.effective_build_ndv(p.bf.build_col, p.bf.delta),
        })
        .collect();

    let out_layout = if split.kind.emits_inner_columns() {
        outer_sp.plan.layout.concat(&inner_sp.plan.layout)
    } else {
        outer_sp.plan.layout.clone()
    };

    for algo in ALGOS {
        match algo {
            JoinAlgoChoice::Hash if okeys.is_empty() => continue,
            JoinAlgoChoice::Merge if okeys.is_empty() || requires_hash => continue,
            // Merge join is enumerated for plain inner joins only.
            JoinAlgoChoice::Merge if split.kind != JoinKind::Inner => continue,
            JoinAlgoChoice::NestLoop if requires_hash => continue,
            _ => {}
        }
        let dist_opts = match algo {
            JoinAlgoChoice::Hash => hash_dist_opts(outer_sp, inner_sp, &okeys, &ikeys, split.kind),
            JoinAlgoChoice::Merge => {
                // Merge join needs co-partitioned inputs: repartition both.
                let mut opts = hash_dist_opts(outer_sp, inner_sp, &okeys, &ikeys, split.kind);
                opts.retain(|o| {
                    !o.build_replicated && o.outer_ex.is_none() == o.inner_ex.is_none()
                        || o.single_stream
                });
                opts
            }
            JoinAlgoChoice::NestLoop => simple_dist_opts(outer_sp, inner_sp, true),
        };
        for opt in dist_opts {
            let mut cost = outer_sp.cost.plus(inner_sp.cost);
            cost = cost.plus(exchange_cost(model, &opt.outer_ex, outer_sp.rows));
            cost = cost.plus(exchange_cost(model, &opt.inner_ex, inner_sp.rows));
            let join_cost = match algo {
                JoinAlgoChoice::Hash => model.hash_join(
                    inner_sp.rows,
                    outer_sp.rows,
                    rows_out,
                    builds.len(),
                    opt.build_replicated,
                    opt.single_stream,
                ),
                JoinAlgoChoice::Merge => {
                    model.merge_join(outer_sp.rows, inner_sp.rows, rows_out, opt.single_stream)
                }
                JoinAlgoChoice::NestLoop => {
                    model.nestloop_join(outer_sp.rows, inner_sp.rows, rows_out, opt.single_stream)
                }
            };
            cost = cost.plus(join_cost);

            let outer_plan = match &opt.outer_ex {
                Some(kind) => wrap_exchange(&outer_sp.plan, kind.clone(), outer_sp.rows),
                None => outer_sp.plan.clone(),
            };
            let inner_plan = match &opt.inner_ex {
                Some(kind) => wrap_exchange(&inner_sp.plan, kind.clone(), inner_sp.rows),
                None => inner_sp.plan.clone(),
            };
            let node = match algo {
                JoinAlgoChoice::Hash => PhysicalNode::HashJoin {
                    outer: outer_plan,
                    inner: inner_plan,
                    kind: split.kind,
                    keys: okeys.iter().copied().zip(ikeys.iter().copied()).collect(),
                    extra: extra.clone(),
                    builds: builds.clone(),
                },
                JoinAlgoChoice::Merge => PhysicalNode::MergeJoin {
                    outer: outer_plan,
                    inner: inner_plan,
                    kind: split.kind,
                    keys: okeys.iter().copied().zip(ikeys.iter().copied()).collect(),
                    extra: extra.clone(),
                },
                JoinAlgoChoice::NestLoop => {
                    // Fold equi keys into the predicate for generality.
                    let mut preds: Vec<Expr> = okeys
                        .iter()
                        .zip(&ikeys)
                        .map(|(o, i)| Expr::col(*o).eq(Expr::col(*i)))
                        .collect();
                    if let Some(e) = extra.clone() {
                        preds.push(e);
                    }
                    PhysicalNode::NestLoopJoin {
                        outer: outer_plan,
                        inner: inner_plan,
                        kind: split.kind,
                        predicate: Expr::conjunction(preds),
                    }
                }
            };
            let plan = PhysicalPlan::new(node, out_layout.clone(), rows_out, opt.out_dist.clone());
            stats.generated += 1;
            list.add(SubPlan {
                plan,
                rows: rows_out,
                cost,
                dist: opt.out_dist,
                pending: pending.remaining.clone(),
                program: outer_sp.program,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::mark_candidates;
    use crate::costing::{initial_plan_lists, required_cols_per_rel};
    use crate::phase1::collect_deltas;
    use crate::synth::{chain_block, running_example, star_block, ChainSpec, Fixture};
    use crate::{BloomMode, OptimizerConfig};

    fn optimize_fixture(fx: &Fixture, config: &OptimizerConfig) -> (SubPlan, Phase2Stats) {
        let est = fx.estimator();
        let model = CostModel::new(config.dop);
        let mut cands = if config.bloom_mode == BloomMode::Cbo {
            mark_candidates(&fx.block, &est, config)
        } else {
            vec![]
        };
        collect_deltas(&fx.block, &est, &mut cands, config);
        let required = required_cols_per_rel(&fx.block, &[]);
        let mut next_filter = 0;
        let initial = initial_plan_lists(
            &fx.block,
            &est,
            &model,
            config,
            &cands,
            &required,
            &HashMap::new(),
            None,
            &mut next_filter,
        )
        .unwrap();
        run_dp(&fx.block, &est, &model, config, initial, None).unwrap()
    }

    fn count_nodes(plan: &Arc<PhysicalPlan>, pred: impl Fn(&PhysicalNode) -> bool) -> usize {
        let mut n = 0;
        plan.visit(&mut |p| {
            if pred(&p.node) {
                n += 1;
            }
        });
        n
    }

    #[test]
    fn plain_dp_produces_complete_plan() {
        let fx = chain_block(&[
            ChainSpec::new("a", 10_000),
            ChainSpec::new("b", 1_000).filtered(0.2),
            ChainSpec::new("c", 100),
        ]);
        let config = OptimizerConfig::with_mode(BloomMode::None);
        let (best, stats) = optimize_fixture(&fx, &config);
        assert!(best.pending.is_empty());
        assert!(stats.pairs > 0);
        // Plan contains exactly two joins over three scans.
        let joins = count_nodes(&best.plan, |n| {
            matches!(
                n,
                PhysicalNode::HashJoin { .. }
                    | PhysicalNode::MergeJoin { .. }
                    | PhysicalNode::NestLoopJoin { .. }
            )
        });
        assert_eq!(joins, 2);
        let scans = count_nodes(&best.plan, |n| matches!(n, PhysicalNode::Scan { .. }));
        assert_eq!(scans, 3);
    }

    #[test]
    fn bf_cbo_resolves_all_filters_in_final_plan() {
        let fx = running_example(1.0);
        let mut config = OptimizerConfig::with_mode(BloomMode::Cbo);
        config.bf_min_apply_rows = 100.0;
        let (best, _) = optimize_fixture(&fx, &config);
        assert!(best.pending.is_empty(), "root must have no pending filters");
        // If a scan applies filter N, some hash join must build filter N.
        let mut applied = Vec::new();
        let mut built = Vec::new();
        best.plan.visit(&mut |p| match &p.node {
            PhysicalNode::Scan { blooms, .. } => applied.extend(blooms.iter().map(|b| b.filter)),
            PhysicalNode::HashJoin { builds, .. } => built.extend(builds.iter().map(|b| b.filter)),
            _ => {}
        });
        applied.sort();
        built.sort();
        assert_eq!(applied, built, "every applied filter must be built once");
        assert!(
            !applied.is_empty(),
            "BF-CBO should have used a Bloom filter"
        );
    }

    #[test]
    fn bf_cbo_wins_over_plain_on_transfer_heavy_chain() {
        // The paper's headline effect: with a filtered small relation at the
        // end of a chain, BF-CBO's best plan must be at least as cheap as
        // plain CBO's (it explores a superset of plans).
        let fx = running_example(1.0);
        let mut cbo = OptimizerConfig::with_mode(BloomMode::Cbo);
        cbo.bf_min_apply_rows = 100.0;
        let plain = OptimizerConfig::with_mode(BloomMode::None);
        let (best_cbo, _) = optimize_fixture(&fx, &cbo);
        let (best_plain, _) = optimize_fixture(&fx, &plain);
        assert!(
            best_cbo.cost.total <= best_plain.cost.total * (1.0 + 1e-9),
            "BF-CBO {} vs plain {}",
            best_cbo.cost.total,
            best_plain.cost.total
        );
        // And its estimate of output rows should not be larger.
        assert!(best_cbo.rows <= best_plain.rows * 1.01);
    }

    #[test]
    fn star_query_gets_multiple_filters() {
        let fx = star_block(
            ChainSpec::new("fact", 200_000),
            &[
                ChainSpec::new("d1", 1_000).filtered(0.05),
                ChainSpec::new("d2", 1_000).filtered(0.1),
            ],
        );
        let mut config = OptimizerConfig::with_mode(BloomMode::Cbo);
        config.bf_min_apply_rows = 1_000.0;
        let (best, _) = optimize_fixture(&fx, &config);
        let applies = count_nodes(
            &best.plan,
            |n| matches!(n, PhysicalNode::Scan { blooms, .. } if !blooms.is_empty()),
        );
        assert!(applies >= 1, "expected at least one Bloom-filtered scan");
    }

    #[test]
    fn search_stats_grow_with_bloom_mode() {
        let fx = running_example(0.5);
        let mut cbo = OptimizerConfig::with_mode(BloomMode::Cbo);
        cbo.bf_min_apply_rows = 50.0;
        let plain = OptimizerConfig::with_mode(BloomMode::None);
        let (_, s_cbo) = optimize_fixture(&fx, &cbo);
        let (_, s_plain) = optimize_fixture(&fx, &plain);
        assert!(
            s_cbo.pairs >= s_plain.pairs,
            "BF-CBO must search at least as much: {} vs {}",
            s_cbo.pairs,
            s_plain.pairs
        );
    }

    #[test]
    fn exchanges_present_in_parallel_plans() {
        let fx = chain_block(&[ChainSpec::new("a", 100_000), ChainSpec::new("b", 50_000)]);
        let config = OptimizerConfig::with_mode(BloomMode::None).dop(8);
        let (best, _) = optimize_fixture(&fx, &config);
        let exchanges = count_nodes(&best.plan, |n| matches!(n, PhysicalNode::Exchange { .. }));
        assert!(
            exchanges >= 1,
            "parallel join should use RD or BC:\n{}",
            best.plan.explain(&|c| format!("{c}"))
        );
    }
}
