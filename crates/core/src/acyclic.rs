//! GYO ear-removal acyclicity test and join-tree extraction.
//!
//! A semijoin program (Yannakakis' algorithm) exists exactly for
//! α-acyclic join queries. This module decides acyclicity of a query
//! block's join graph with the classic GYO reduction and, when the block
//! is acyclic, returns a *join tree*: every relation except the root is
//! attached to a parent it shares a (possibly transitive) join equality
//! with. The optimizer turns the tree into a two-pass program — a
//! bottom-up reducer pass building one Bloom reducer per tree edge,
//! then a probe pass whose base scans each apply their children's final
//! reducers.
//!
//! The hypergraph view: attributes are *equivalence classes* of columns
//! connected by equi clauses (so `t1.a = t2.a AND t2.a = t3.a` is one
//! attribute shared by three hyperedges), and each relation contributes
//! the hyperedge of classes its columns participate in. GYO repeatedly
//! (a) drops attributes private to a single hyperedge and (b) removes a
//! hyperedge contained in another (an *ear*), recording the witness as
//! its parent. The query is acyclic iff the reduction ends with a single
//! hyperedge; a join cycle with distinct attributes (e.g. a triangle)
//! survives both rules forever.

use std::collections::{BTreeSet, HashMap};

use bfq_common::{ColumnId, RelSet};
use bfq_plan::{QueryBlock, RelKind, RelSource};

/// One edge of a join tree: `child` attaches below `parent`, joined on
/// `child_col = parent_col` (directly or through a chain of equalities in
/// the same attribute class — either way the equality holds on every
/// joined row, which is all a semijoin reducer needs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinTreeEdge {
    /// Ordinal of the relation being attached.
    pub child: usize,
    /// Ordinal of the parent relation.
    pub parent: usize,
    /// Join column on the child side (the reducer's build column).
    pub child_col: ColumnId,
    /// Join column on the parent side (the reducer's apply column).
    pub parent_col: ColumnId,
}

/// A rooted join tree over the relations of an acyclic query block.
#[derive(Debug, Clone)]
pub struct JoinTree {
    /// Ordinal of the root relation (the last hyperedge GYO leaves).
    pub root: usize,
    /// Tree edges in GYO removal order, which is bottom-up: every
    /// relation's edge appears after the edges of all its descendants.
    pub edges: Vec<JoinTreeEdge>,
    /// All relations covered by the tree.
    pub rels: RelSet,
}

impl JoinTree {
    /// The edges whose parent is `rel` (i.e. `rel`'s children).
    pub fn children_of(&self, rel: usize) -> impl Iterator<Item = &JoinTreeEdge> {
        self.edges.iter().filter(move |e| e.parent == rel)
    }

    /// `rel` together with all its descendants.
    pub fn subtree(&self, rel: usize) -> RelSet {
        let mut set = RelSet::single(rel);
        // Edges are bottom-up, so a reverse sweep sees parents before
        // children and one pass suffices.
        for e in self.edges.iter().rev() {
            if set.contains(e.parent) {
                set = set.with(e.child);
            }
        }
        set
    }
}

/// Union-find over column occurrences, yielding attribute classes.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, i: usize) -> usize {
        if self.parent[i] != i {
            let root = self.find(self.parent[i]);
            self.parent[i] = root;
        }
        self.parent[i]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// Whether the block is eligible for a semijoin program at all: at least
/// three freely-reorderable base-table relations (with two, a program
/// degenerates to the single per-join filter BF-CBO already places) and
/// a connected join graph.
pub fn program_eligible(block: &QueryBlock) -> bool {
    block.num_rels() >= 3
        && block
            .rels
            .iter()
            .all(|r| r.kind == RelKind::Inner && matches!(r.source, RelSource::Table(_)))
        && block.is_connected(RelSet::all(block.num_rels()))
}

/// Run GYO ear removal on the block's join graph. Returns the join tree
/// when the graph is acyclic and covers every relation, `None` when the
/// graph is cyclic or the block is not [`program_eligible`].
///
/// `base_rows[rel]` biases ear selection: among the valid ears of a round
/// the smallest relation is removed first, so the largest relation (the
/// fact table of a star or snowflake) survives to the root. The root is
/// the one relation scanned only in the probe pass — every other relation
/// is scanned once more to build its reducer — so keeping the most
/// expensive scan out of the reducer pass minimizes schedule cost. Any
/// root yields a correct program; this picks the cheap one.
pub fn join_tree(block: &QueryBlock, base_rows: &[f64]) -> Option<JoinTree> {
    if !program_eligible(block) {
        return None;
    }
    debug_assert_eq!(base_rows.len(), block.num_rels());
    let n = block.num_rels();

    // Attribute classes: union-find over the columns of equi clauses.
    let mut col_ids: Vec<ColumnId> = Vec::new();
    let mut col_slot: HashMap<ColumnId, usize> = HashMap::new();
    let mut slot_of = |col: ColumnId, ids: &mut Vec<ColumnId>| -> usize {
        *col_slot.entry(col).or_insert_with(|| {
            ids.push(col);
            ids.len() - 1
        })
    };
    let mut pairs = Vec::new();
    for c in &block.equi_clauses {
        let l = slot_of(c.left, &mut col_ids);
        let r = slot_of(c.right, &mut col_ids);
        pairs.push((l, r));
    }
    let mut uf = UnionFind::new(col_ids.len());
    for (l, r) in pairs {
        uf.union(l, r);
    }

    // Hyperedge per relation + a representative column per (rel, class).
    let mut edges: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    let mut rep: HashMap<(usize, usize), ColumnId> = HashMap::new();
    for (slot, col) in col_ids.iter().enumerate() {
        let class = uf.find(slot);
        let rel = block.ordinal_of(col.table)?;
        edges[rel].insert(class);
        rep.entry((rel, class)).or_insert(*col);
    }
    if edges.iter().any(|e| e.is_empty()) {
        // A relation with no join clause means a cross join — connectivity
        // should already have rejected this, but stay defensive.
        return None;
    }

    // GYO reduction.
    let mut alive = vec![true; n];
    let mut alive_count = n;
    let mut tree_edges = Vec::with_capacity(n - 1);
    loop {
        let mut changed = false;

        // Rule (a): drop attributes contained in at most one live edge.
        let mut class_count: HashMap<usize, usize> = HashMap::new();
        for (i, e) in edges.iter().enumerate() {
            if alive[i] {
                for &c in e {
                    *class_count.entry(c).or_insert(0) += 1;
                }
            }
        }
        for (i, e) in edges.iter_mut().enumerate() {
            if alive[i] {
                let before = e.len();
                e.retain(|c| class_count[c] > 1);
                changed |= e.len() != before;
            }
        }

        // Rule (b): remove one ear — a live edge contained in another.
        // Of all valid ears this round, remove the smallest relation (ties
        // by ordinal), attaching it to its largest containing parent.
        if alive_count > 1 {
            let mut ear: Option<(usize, usize)> = None;
            for child in 0..n {
                if !alive[child] {
                    continue;
                }
                let parent = (0..n)
                    .filter(|&p| p != child && alive[p] && edges[child].is_subset(&edges[p]))
                    .max_by(|&a, &b| base_rows[a].total_cmp(&base_rows[b]));
                if let Some(parent) = parent {
                    let better = match ear {
                        None => true,
                        Some((c, _)) => base_rows[child] < base_rows[c],
                    };
                    if better {
                        ear = Some((child, parent));
                    }
                }
            }
            if let Some((child, parent)) = ear {
                // Pick a connecting class; a fully-private edge would have
                // been emptied by rule (a), leaving no witness column, so
                // treat it as ineligible.
                let &class = edges[child].iter().next()?;
                let (child_col, parent_col) = (rep.get(&(child, class)), rep.get(&(parent, class)));
                let (Some(&child_col), Some(&parent_col)) = (child_col, parent_col) else {
                    return None;
                };
                tree_edges.push(JoinTreeEdge {
                    child,
                    parent,
                    child_col,
                    parent_col,
                });
                alive[child] = false;
                alive_count -= 1;
                changed = true;
            }
        }

        if !changed {
            break;
        }
    }

    if alive_count != 1 {
        return None; // Cyclic: the reduction got stuck.
    }
    let root = alive.iter().position(|&a| a).expect("one live edge");
    Some(JoinTree {
        root,
        edges: tree_edges,
        rels: RelSet::all(n),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfq_common::TableId;
    use bfq_plan::block::FIRST_VIRTUAL_TABLE;
    use bfq_plan::{BaseRel, EquiClause};

    /// A block of `n` inner base-table rels with the given clauses
    /// (`(left_rel, left_idx, right_rel, right_idx)`).
    fn block(n: usize, clauses: &[(usize, u32, usize, u32)]) -> QueryBlock {
        let rels = (0..n)
            .map(|i| BaseRel {
                ordinal: i,
                rel_id: TableId(FIRST_VIRTUAL_TABLE + i as u32),
                source: RelSource::Table(TableId(i as u32)),
                alias: format!("t{i}"),
                kind: RelKind::Inner,
                local_preds: vec![],
            })
            .collect();
        let equi_clauses = clauses
            .iter()
            .map(|&(lr, li, rr, ri)| EquiClause {
                left: ColumnId::new(TableId(FIRST_VIRTUAL_TABLE + lr as u32), li),
                right: ColumnId::new(TableId(FIRST_VIRTUAL_TABLE + rr as u32), ri),
                left_rel: lr,
                right_rel: rr,
            })
            .collect();
        QueryBlock {
            rels,
            equi_clauses,
            complex_preds: vec![],
        }
    }

    #[test]
    fn chain_is_acyclic_with_bottom_up_order() {
        // t0 -- t1 -- t2 -- t3 on distinct attributes.
        let b = block(4, &[(0, 1, 1, 0), (1, 1, 2, 0), (2, 1, 3, 0)]);
        let tree = join_tree(&b, &[1.0; 4]).expect("chain is acyclic");
        assert_eq!(tree.edges.len(), 3);
        assert_eq!(tree.rels, RelSet::all(4));
        // Every edge's child subtree must be fully emitted before the
        // child itself appears as a parent.
        for (i, e) in tree.edges.iter().enumerate() {
            for later in &tree.edges[i + 1..] {
                assert_ne!(later.child, e.child, "each rel attached once");
            }
            assert_ne!(e.child, tree.root);
        }
        // Subtrees nest properly: the root's subtree is everything.
        assert_eq!(tree.subtree(tree.root), RelSet::all(4));
        for e in &tree.edges {
            assert!(tree.subtree(e.child).is_subset_of(tree.subtree(e.parent)));
            assert!(!tree.subtree(e.child).contains(e.parent));
        }
    }

    #[test]
    fn star_is_acyclic_with_fact_root() {
        // Fact t0 joins three dims on distinct columns.
        let b = block(4, &[(0, 0, 1, 0), (0, 1, 2, 0), (0, 2, 3, 0)]);
        let tree = join_tree(&b, &[1000.0, 10.0, 10.0, 10.0]).expect("star is acyclic");
        assert_eq!(tree.root, 0);
        assert_eq!(tree.edges.len(), 3);
        for e in &tree.edges {
            assert_eq!(e.parent, 0);
            assert_eq!(tree.subtree(e.child), RelSet::single(e.child));
        }
    }

    #[test]
    fn triangle_is_rejected() {
        // t0.a=t1.a, t1.b=t2.b, t2.c=t0.c — the canonical cyclic query.
        let b = block(3, &[(0, 0, 1, 0), (1, 1, 2, 0), (2, 1, 0, 1)]);
        assert!(join_tree(&b, &[1.0; 3]).is_none());
    }

    #[test]
    fn shared_attribute_star_is_acyclic() {
        // t0.k = t1.k and t1.k = t2.k: one attribute class, three edges —
        // looks like a cycle as a graph but is α-acyclic.
        let b = block(3, &[(0, 0, 1, 0), (1, 0, 2, 0)]);
        let tree = join_tree(&b, &[1.0; 3]).expect("shared attribute is acyclic");
        assert_eq!(tree.edges.len(), 2);
    }

    #[test]
    fn two_rels_and_dependent_kinds_are_ineligible() {
        let b = block(2, &[(0, 0, 1, 0)]);
        assert!(
            join_tree(&b, &[1.0; 2]).is_none(),
            "two rels: per-join filter wins"
        );
        let mut b = block(3, &[(0, 1, 1, 0), (1, 1, 2, 0)]);
        b.rels[2].kind = RelKind::Semi;
        assert!(
            join_tree(&b, &[1.0; 3]).is_none(),
            "dependent rels are out of scope"
        );
    }

    #[test]
    fn disconnected_graph_is_ineligible() {
        let b = block(3, &[(0, 0, 1, 0)]);
        assert!(join_tree(&b, &[1.0; 3]).is_none());
    }
}
