//! Costing Bloom filter sub-plans (paper §3.5) and building the initial
//! per-relation plan lists.
//!
//! After phase 1, every candidate carries a list of feasible δ's. For each
//! relation we create:
//! * one plain scan sub-plan, and
//! * one Bloom-filter scan sub-plan per combination of δ choices across the
//!   relation's surviving candidates — *all* candidates apply simultaneously
//!   (Heuristic 4), but "we do allow for various combinations of δs".
//!
//! Heuristic 5 (filter size) and Heuristic 6 (selectivity threshold) prune
//! δ options; the δ-superset dominance rule prunes sub-plans as they enter
//! the plan list; Heuristic 7 optionally caps the surviving BF sub-plans.

use std::collections::HashMap;
use std::sync::Arc;

use bfq_common::{ColumnId, FilterId, RelSet, Result};
use bfq_cost::{BfAssumption, Cost, CostModel, Estimator};
use bfq_expr::{Expr, Layout};
use bfq_plan::{
    BloomApply, Distribution, FilterSchedule, PhysicalNode, PhysicalPlan, QueryBlock, RelSource,
};

use crate::acyclic::JoinTree;
use crate::candidates::BfCandidate;
use crate::subplan::{PendingBf, PlanList, SubPlan};
use crate::OptimizerConfig;

/// A pre-planned derived relation: its physical plan and cumulative cost.
pub type DerivedPlans = HashMap<usize, (Arc<PhysicalPlan>, Cost)>;

/// Compute, per relation ordinal, the base-schema column ordinals that must
/// survive the scan: everything referenced above the scan (join clauses,
/// complex predicates, required outputs). Local predicate columns evaluate
/// inside the scan and need not be projected unless referenced elsewhere.
pub fn required_cols_per_rel(block: &QueryBlock, extra: &[ColumnId]) -> Vec<Vec<u32>> {
    let mut per_rel: Vec<Vec<u32>> = vec![Vec::new(); block.num_rels()];
    let mut add = |col: ColumnId| {
        if let Some(ord) = block.ordinal_of(col.table) {
            if !per_rel[ord].contains(&col.index) {
                per_rel[ord].push(col.index);
            }
        }
    };
    for clause in &block.equi_clauses {
        add(clause.left);
        add(clause.right);
    }
    for pred in &block.complex_preds {
        for col in pred.columns() {
            add(col);
        }
    }
    for col in extra {
        add(*col);
    }
    for (ord, cols) in per_rel.iter_mut().enumerate() {
        // A scan must produce at least one column to carry row counts.
        if cols.is_empty() {
            cols.push(0);
        }
        cols.sort_unstable();
        let _ = ord;
    }
    per_rel
}

/// Build the scan [`SubPlan`] for relation `rel` with the given Bloom
/// filter applications.
pub fn make_scan_subplan(
    block: &QueryBlock,
    est: &Estimator<'_>,
    model: &CostModel,
    rel: usize,
    pendings: Vec<PendingBf>,
    projection: &[u32],
    derived: &DerivedPlans,
) -> Result<SubPlan> {
    let base_rel = block.rel(rel);
    let rel_id = base_rel.rel_id;
    let predicate = Expr::conjunction(base_rel.local_preds.clone());
    let n_preds = base_rel.local_preds.len();
    let assumptions: Vec<BfAssumption> = pendings.iter().map(|p| p.bf.clone()).collect();
    let rows_out = if assumptions.is_empty() {
        est.base_rows(rel)
    } else {
        est.bf_scan_rows(rel, &assumptions)
    };
    let blooms: Vec<BloomApply> = pendings
        .iter()
        .map(|p| BloomApply {
            filter: p.id,
            column: p.bf.apply_col,
            predicted_fpr: est.bf_fpr(&p.bf),
            predicted_pass: est.bf_pass_fraction(&p.bf),
        })
        .collect();
    let layout = Layout::new(
        projection
            .iter()
            .map(|&i| ColumnId::new(rel_id, i))
            .collect(),
    );

    let (node, dist, cost) = match &base_rel.source {
        RelSource::Table(base) => {
            // Read volume reflects chunk-level data skipping: chunks the
            // zone maps rule out are never touched.
            let cost = model.scan_with_blooms(
                est.scan_read_rows(rel),
                est.base_rows(rel),
                rows_out,
                n_preds,
                blooms.len(),
            );
            let node = PhysicalNode::Scan {
                base: *base,
                rel_id,
                alias: base_rel.alias.clone(),
                projection: projection.to_vec(),
                predicate,
                blooms,
            };
            (node, Distribution::AnyPartitioned, cost)
        }
        RelSource::Derived(_) => {
            let (input, input_cost) = derived
                .get(&rel)
                .ok_or_else(|| {
                    bfq_common::BfqError::internal(format!(
                        "derived relation {rel} was not pre-planned"
                    ))
                })?
                .clone();
            // Derived output arrives gathered on a single worker; predicates
            // and Bloom probes run there.
            let work = model.scan_with_blooms(
                est.raw_rows(rel) * model.dop as f64, // single-stream: undo the dop divisor
                est.base_rows(rel) * model.dop as f64,
                rows_out * model.dop as f64,
                n_preds,
                blooms.len(),
            );
            let node = PhysicalNode::DerivedScan {
                input,
                rel_id,
                alias: base_rel.alias.clone(),
                predicate,
                blooms,
            };
            (node, Distribution::Single, input_cost.plus(work))
        }
    };
    let plan = PhysicalPlan::new(node, layout, rows_out, dist.clone());
    Ok(SubPlan {
        plan,
        rows: rows_out,
        cost,
        dist,
        pending: pendings,
        program: false,
    })
}

/// One reducer edge of a semijoin program: a Bloom reducer built from
/// `child`'s reducer-pass step and applied to `parent`'s probe-pass scan.
#[derive(Debug, Clone)]
pub struct ProgramEdge {
    /// Ordinal of the build-side (child) relation.
    pub child: usize,
    /// Ordinal of the apply-side (parent) relation.
    pub parent: usize,
    /// Runtime filter id published by the reducer step.
    pub filter: FilterId,
    /// Estimator view of the reducer. Its δ is the child's whole subtree:
    /// the reducer step scans the child through its descendants' reducers,
    /// so the sealed filter carries their combined filtering.
    pub bf: BfAssumption,
    /// The child's subtree in the join tree (equals `bf.delta`).
    pub subtree: RelSet,
    /// Build-side NDV estimate (sizes the Bloom filter).
    pub expected_ndv: f64,
}

/// A costed two-pass semijoin program for one query block — the rewrite
/// the DP weighs against per-join runtime filters. `steps` is the
/// bottom-up reducer pass (Yannakakis' first pass, one
/// [`PhysicalNode::SemijoinReduce`] per join-tree edge); the probe pass is
/// whatever join plan the DP builds in the program lane, with each base
/// scan pre-reduced by its children's final reducers.
#[derive(Debug, Clone)]
pub struct ProgramSpec {
    /// Root of the join tree (the only relation without a reducer).
    pub root: usize,
    /// Reducer edges in bottom-up (schedule) order.
    pub edges: Vec<ProgramEdge>,
    /// Reducer-pass plans, one per edge, in execution order.
    pub steps: Vec<Arc<PhysicalPlan>>,
    /// Total cost of running the reducer pass.
    pub schedule_cost: Cost,
}

impl ProgramSpec {
    /// The reducers still pruning a DP set's output: edges whose parent is
    /// in `set` but whose build subtree is not yet fully joined in. Once
    /// the subtree joins, the join itself enforces the semijoin and the
    /// reducer's reduction is no longer an extra assumption to multiply in.
    pub fn active_assumptions(&self, set: RelSet) -> Vec<BfAssumption> {
        self.edges
            .iter()
            .filter(|e| set.contains(e.parent) && !e.subtree.is_subset_of(set))
            .map(|e| e.bf.clone())
            .collect()
    }

    /// The reducer pass as an executable [`FilterSchedule`].
    pub fn schedule(&self) -> FilterSchedule {
        FilterSchedule {
            steps: self.steps.clone(),
        }
    }
}

/// Build the block's semijoin program from its join tree: one reducer per
/// tree edge, bottom-up. Returns `None` when any reducer would exceed the
/// Heuristic-5 size budget — a program cannot drop individual reducers
/// (every probe scan relies on its child edges), so one oversized filter
/// rules out the whole rewrite.
pub fn build_program(
    block: &QueryBlock,
    est: &Estimator<'_>,
    model: &CostModel,
    config: &OptimizerConfig,
    tree: &JoinTree,
    next_filter: &mut u32,
) -> Option<ProgramSpec> {
    let mut edges: Vec<ProgramEdge> = Vec::with_capacity(tree.edges.len());
    for e in &tree.edges {
        let subtree = tree.subtree(e.child);
        let bf = BfAssumption {
            apply_rel: e.parent,
            apply_col: e.parent_col,
            build_rel: e.child,
            build_col: e.child_col,
            delta: subtree,
        };
        let expected_ndv = est.effective_build_ndv(e.child_col, subtree);
        if expected_ndv > config.bf_max_build_ndv {
            return None;
        }
        let filter = FilterId(*next_filter);
        *next_filter += 1;
        edges.push(ProgramEdge {
            child: e.child,
            parent: e.parent,
            filter,
            bf,
            subtree,
            expected_ndv,
        });
    }

    // Reducer steps in edge (bottom-up) order: scan the child through its
    // own children's reducers, then seal a Bloom filter on the join key.
    // GYO removal order guarantees a child's edge precedes its parent's,
    // so every filter a step applies was published by an earlier step.
    let mut steps = Vec::with_capacity(edges.len());
    let mut schedule_cost = Cost::ZERO;
    for edge in &edges {
        let rel = edge.child;
        let base_rel = block.rel(rel);
        let RelSource::Table(base) = &base_rel.source else {
            return None; // program_eligible only admits base tables
        };
        let assumptions: Vec<BfAssumption> = edges
            .iter()
            .filter(|c| c.parent == rel)
            .map(|c| c.bf.clone())
            .collect();
        let blooms: Vec<BloomApply> = edges
            .iter()
            .filter(|c| c.parent == rel)
            .map(|c| BloomApply {
                filter: c.filter,
                column: c.bf.apply_col,
                predicted_fpr: est.bf_fpr(&c.bf),
                predicted_pass: est.bf_pass_fraction(&c.bf),
            })
            .collect();
        let rows = if assumptions.is_empty() {
            est.base_rows(rel)
        } else {
            est.bf_scan_rows(rel, &assumptions)
        };
        let scan_cost = model.scan_with_blooms(
            est.scan_read_rows(rel),
            est.base_rows(rel),
            rows,
            base_rel.local_preds.len(),
            blooms.len(),
        );
        let layout = Layout::new(vec![edge.bf.build_col]);
        let scan = PhysicalPlan::new(
            PhysicalNode::Scan {
                base: *base,
                rel_id: base_rel.rel_id,
                alias: base_rel.alias.clone(),
                projection: vec![edge.bf.build_col.index],
                predicate: Expr::conjunction(base_rel.local_preds.clone()),
                blooms,
            },
            layout.clone(),
            rows,
            Distribution::AnyPartitioned,
        );
        let build_cost = Cost::of(
            rows / model.dop as f64 * (model.params.bf_build_per_row + model.params.cpu_tuple),
        );
        let step = PhysicalPlan::new(
            PhysicalNode::SemijoinReduce {
                input: scan,
                filter: edge.filter,
                key: edge.bf.build_col,
                expected_ndv: edge.expected_ndv,
                target_alias: block.rel(edge.parent).alias.clone(),
                predicted_pass: est.bf_pass_fraction(&edge.bf),
                predicted_fpr: est.bf_fpr(&edge.bf),
            },
            layout,
            rows,
            Distribution::AnyPartitioned,
        );
        schedule_cost = schedule_cost.plus(scan_cost).plus(build_cost);
        steps.push(step);
    }
    Some(ProgramSpec {
        root: tree.root,
        edges,
        steps,
        schedule_cost,
    })
}

/// The probe-pass scan sub-plan of `rel` in the program lane: a single
/// scan of the base table through the final reducers of `rel`'s tree
/// children. The reducer pass itself is charged once, on the tree root's
/// scan, so any complete program-lane plan pays it exactly once.
pub fn make_program_scan_subplan(
    block: &QueryBlock,
    est: &Estimator<'_>,
    model: &CostModel,
    spec: &ProgramSpec,
    rel: usize,
    projection: &[u32],
) -> Result<SubPlan> {
    let base_rel = block.rel(rel);
    let RelSource::Table(base) = &base_rel.source else {
        return Err(bfq_common::BfqError::internal(format!(
            "semijoin program over non-table relation {rel}"
        )));
    };
    let assumptions: Vec<BfAssumption> = spec
        .edges
        .iter()
        .filter(|e| e.parent == rel)
        .map(|e| e.bf.clone())
        .collect();
    let blooms: Vec<BloomApply> = spec
        .edges
        .iter()
        .filter(|e| e.parent == rel)
        .map(|e| BloomApply {
            filter: e.filter,
            column: e.bf.apply_col,
            predicted_fpr: est.bf_fpr(&e.bf),
            predicted_pass: est.bf_pass_fraction(&e.bf),
        })
        .collect();
    let rows_out = if assumptions.is_empty() {
        est.base_rows(rel)
    } else {
        est.bf_scan_rows(rel, &assumptions)
    };
    let mut cost = model.scan_with_blooms(
        est.scan_read_rows(rel),
        est.base_rows(rel),
        rows_out,
        base_rel.local_preds.len(),
        blooms.len(),
    );
    if rel == spec.root {
        cost = cost.plus(spec.schedule_cost);
    }
    let layout = Layout::new(
        projection
            .iter()
            .map(|&i| ColumnId::new(base_rel.rel_id, i))
            .collect(),
    );
    let plan = PhysicalPlan::new(
        PhysicalNode::Scan {
            base: *base,
            rel_id: base_rel.rel_id,
            alias: base_rel.alias.clone(),
            projection: projection.to_vec(),
            predicate: Expr::conjunction(base_rel.local_preds.clone()),
            blooms,
        },
        layout,
        rows_out,
        Distribution::AnyPartitioned,
    );
    Ok(SubPlan {
        plan,
        rows: rows_out,
        cost,
        dist: Distribution::AnyPartitioned,
        pending: Vec::new(),
        program: true,
    })
}

/// Filter one candidate's Δ by Heuristics 5 and 6, returning the surviving
/// assumptions.
fn surviving_options(
    cand: &BfCandidate,
    est: &Estimator<'_>,
    config: &OptimizerConfig,
) -> Vec<BfAssumption> {
    let mut out = Vec::new();
    for &delta in &cand.deltas {
        let bf = BfAssumption {
            apply_rel: cand.apply_rel,
            apply_col: cand.apply_col,
            build_rel: cand.build_rel,
            build_col: cand.build_col,
            delta,
        };
        // Heuristic 5: filter must fit the size budget (upper-bound NDV).
        if est.effective_build_ndv(bf.build_col, delta) > config.bf_max_build_ndv {
            continue;
        }
        // Heuristic 6: must be selective enough (excluding false positives).
        if est.bf_semi_selectivity(&bf) > config.bf_selectivity_threshold {
            continue;
        }
        out.push(bf);
    }
    out
}

/// Build the initial plan list of every relation: the plain scan plus the
/// Bloom-filter scan sub-plans of §3.5, plus — when a semijoin program was
/// built for the block — one program-lane scan per relation.
#[allow(clippy::too_many_arguments)] // mirrors the paper's §3.5 inputs
pub fn initial_plan_lists(
    block: &QueryBlock,
    est: &Estimator<'_>,
    model: &CostModel,
    config: &OptimizerConfig,
    candidates: &[BfCandidate],
    required: &[Vec<u32>],
    derived: &DerivedPlans,
    program: Option<&ProgramSpec>,
    next_filter: &mut u32,
) -> Result<Vec<PlanList>> {
    let mut lists = Vec::with_capacity(block.num_rels());
    for (rel, projection) in required.iter().enumerate().take(block.num_rels()) {
        let mut list = PlanList::new();
        // Plain scan.
        list.add(make_scan_subplan(
            block,
            est,
            model,
            rel,
            Vec::new(),
            projection,
            derived,
        )?);

        // Bloom filter scan sub-plans.
        let rel_cands: Vec<Vec<BfAssumption>> = candidates
            .iter()
            .filter(|c| c.apply_rel == rel)
            .map(|c| surviving_options(c, est, config))
            .filter(|opts| !opts.is_empty())
            .collect();
        if !rel_cands.is_empty() {
            let mut combos: Vec<Vec<BfAssumption>> = vec![Vec::new()];
            for options in &rel_cands {
                let mut next = Vec::new();
                for combo in &combos {
                    for opt in options {
                        if next.len() + combos.len() > config.max_bf_subplans_per_rel {
                            break;
                        }
                        let mut c = combo.clone();
                        c.push(opt.clone());
                        next.push(c);
                    }
                }
                combos = next;
            }
            for combo in combos {
                if combo.is_empty() {
                    continue;
                }
                let pendings: Vec<PendingBf> = combo
                    .into_iter()
                    .map(|bf| {
                        let id = FilterId(*next_filter);
                        *next_filter += 1;
                        PendingBf { id, bf }
                    })
                    .collect();
                let sp = make_scan_subplan(block, est, model, rel, pendings, projection, derived)?;
                list.add(sp);
            }
        }
        // Program lane: the same relation scanned through its children's
        // scheduled reducers (never dominated by — and never dominating —
        // the per-join lane).
        if let Some(spec) = program {
            list.add(make_program_scan_subplan(
                block, est, model, spec, rel, projection,
            )?);
        }
        if config.h7_enabled {
            list.apply_heuristic7(config.h7_max_subplans);
        }
        lists.push(list);
    }
    Ok(lists)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::mark_candidates;
    use crate::phase1::collect_deltas;
    use crate::synth::{running_example, ChainSpec};
    use bfq_common::RelSet;

    fn plan_lists_for(
        fx: &crate::synth::Fixture,
        config: &OptimizerConfig,
    ) -> (Vec<PlanList>, u32) {
        let est = fx.estimator();
        let model = CostModel::new(config.dop);
        let mut cands = mark_candidates(&fx.block, &est, config);
        collect_deltas(&fx.block, &est, &mut cands, config);
        let required = required_cols_per_rel(&fx.block, &[]);
        let mut next_filter = 0;
        let lists = initial_plan_lists(
            &fx.block,
            &est,
            &model,
            config,
            &cands,
            &required,
            &HashMap::new(),
            None,
            &mut next_filter,
        )
        .unwrap();
        (lists, next_filter)
    }

    #[test]
    fn plain_scan_always_present() {
        let fx = running_example(0.1);
        let config = OptimizerConfig {
            bf_min_apply_rows: 100.0,
            ..Default::default()
        };
        let (lists, _) = plan_lists_for(&fx, &config);
        for (rel, list) in lists.iter().enumerate() {
            assert!(
                list.plans().iter().any(|p| !p.has_pending()),
                "relation {rel} lost its plain scan"
            );
        }
    }

    #[test]
    fn bf_subplans_created_with_reduced_rows() {
        let fx = running_example(1.0);
        let config = OptimizerConfig {
            bf_min_apply_rows: 100.0,
            ..Default::default()
        };
        let (lists, filters) = plan_lists_for(&fx, &config);
        // t1 must have at least one BF sub-plan with far fewer rows than the
        // plain scan (t2 is filtered to ~50%).
        let t1 = &lists[0];
        let plain = t1.plans().iter().find(|p| !p.has_pending()).unwrap();
        let bf: Vec<_> = t1.plans().iter().filter(|p| p.has_pending()).collect();
        assert!(!bf.is_empty(), "no BF sub-plan on t1");
        for sp in &bf {
            assert!(sp.rows < plain.rows);
            // Scan node carries the BloomApply annotation.
            match &sp.plan.node {
                PhysicalNode::Scan { blooms, .. } => assert_eq!(blooms.len(), sp.pending.len()),
                other => panic!("expected scan, got {other:?}"),
            }
        }
        assert!(filters > 0, "no filter ids allocated");
    }

    #[test]
    fn delta_superset_with_equal_rows_is_pruned() {
        // Paper Example 3.3: t1's δ={t2,t3} sub-plan has the same estimated
        // rows as δ={t2} (t3 is unfiltered, FK-joined: no extra transfer),
        // so only δ={t2} survives.
        let fx = running_example(1.0);
        let config = OptimizerConfig {
            bf_min_apply_rows: 100.0,
            ..Default::default()
        };
        let (lists, _) = plan_lists_for(&fx, &config);
        let t1_bf: Vec<_> = lists[0]
            .plans()
            .iter()
            .filter(|p| p.has_pending())
            .collect();
        assert_eq!(t1_bf.len(), 1, "expected exactly one surviving BF sub-plan");
        assert_eq!(t1_bf[0].pending[0].bf.delta, RelSet::single(1));
    }

    #[test]
    fn heuristic6_drops_unselective_filters() {
        // b barely filters a: selectivity close to 1 > 2/3 threshold.
        let fx = crate::synth::chain_block(&[
            ChainSpec::new("a", 50_000),
            ChainSpec::new("b", 1_000).filtered(0.9),
        ]);
        let (lists, _) = plan_lists_for(&fx, &OptimizerConfig::default());
        assert!(
            lists[0].plans().iter().all(|p| !p.has_pending()),
            "unselective filter should be dropped by Heuristic 6"
        );
    }

    #[test]
    fn heuristic5_drops_oversized_filters() {
        let fx = crate::synth::chain_block(&[
            ChainSpec::new("a", 50_000),
            ChainSpec::new("b", 1_000).filtered(0.2),
        ]);
        let config = OptimizerConfig {
            bf_max_build_ndv: 10.0, // absurdly small budget
            ..Default::default()
        };
        let (lists, _) = plan_lists_for(&fx, &config);
        assert!(lists[0].plans().iter().all(|p| !p.has_pending()));
    }

    #[test]
    fn heuristic7_caps_bf_subplans() {
        let fx = running_example(1.0);
        let config = OptimizerConfig {
            bf_min_apply_rows: 100.0,
            h7_enabled: true,
            h7_max_subplans: 0, // force the cap to bite
            ..Default::default()
        };
        let (lists, _) = plan_lists_for(&fx, &config);
        for list in &lists {
            assert!(list.plans().iter().filter(|p| p.has_pending()).count() <= 1);
        }
    }

    #[test]
    fn required_cols_cover_clauses_and_extras() {
        let fx = running_example(0.01);
        let extra = vec![fx.col(0, 2)];
        let req = required_cols_per_rel(&fx.block, &extra);
        // t1 needs fk (clause) and val (extra).
        assert!(req[0].contains(&1) && req[0].contains(&2));
        // t2 needs pk and fk (two clauses).
        assert!(req[1].contains(&0) && req[1].contains(&1));
        // t3 needs pk only.
        assert_eq!(req[2], vec![0]);
    }
}
