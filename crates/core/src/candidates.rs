//! Marking Bloom filter candidates (paper §3.3).
//!
//! For every hashable equi-join clause we may attach one candidate to the
//! relation whose scan could profitably apply a filter built from the other
//! side. Heuristic 1 puts the candidate on the larger relation; Heuristic 2
//! requires the apply relation to clear a row threshold; correctness rules
//! exclude anti joins entirely and the row-preserving side of left outer
//! joins. Heuristic 9, when enabled, additionally allows a candidate on the
//! smaller relation (its δ's get size-checked during phase 1).

use bfq_common::{ColumnId, RelSet};
use bfq_cost::Estimator;
use bfq_plan::{QueryBlock, RelKind};

use crate::OptimizerConfig;

/// A Bloom filter candidate: the paper's `(a, b, Δ)` attached to the apply
/// relation.
#[derive(Debug, Clone, PartialEq)]
pub struct BfCandidate {
    /// Ordinal of the relation the filter would be applied to.
    pub apply_rel: usize,
    /// Apply column `a` (a column of `apply_rel`).
    pub apply_col: ColumnId,
    /// Ordinal of the relation providing the build column.
    pub build_rel: usize,
    /// Build column `b`.
    pub build_col: ColumnId,
    /// Feasible build-side relation sets, populated by phase 1
    /// (`Δ = [δ₀, δ₁, …]`).
    pub deltas: Vec<RelSet>,
    /// Marked under Heuristic 9 (candidate on the smaller side); its δ's
    /// must be smaller than the apply relation.
    pub via_h9: bool,
}

impl BfCandidate {
    /// Record a feasible δ if it is new.
    pub fn add_delta(&mut self, delta: RelSet) {
        if !self.deltas.contains(&delta) {
            self.deltas.push(delta);
        }
    }
}

/// Whether a clause between `apply` and `build` relations may carry a Bloom
/// filter, per the correctness restrictions of §3.3.
fn legal_direction(block: &QueryBlock, apply_rel: usize, build_rel: usize) -> bool {
    let apply_kind = block.rel(apply_rel).kind;
    let build_kind = block.rel(build_rel).kind;
    // Never across an anti join, in either direction.
    if apply_kind == RelKind::Anti || build_kind == RelKind::Anti {
        return false;
    }
    // A left-outer dependent relation is the null-producing side; the rest
    // of the block is row-preserving. Applying to the preserving side (i.e.
    // building FROM the outer-joined relation) would drop preserved rows.
    if build_kind == RelKind::LeftOuter {
        return false;
    }
    // Applying TO the null-producing side is fine (filtered inner rows just
    // produce NULL-extended output), as is anything between inner/semi rels.
    true
}

/// Mark Bloom filter candidates for a block (paper §3.3).
///
/// Returns one candidate per eligible clause direction, with empty `Δ`
/// lists. Multi-way equivalence classes arise here as multiple clauses; the
/// larger-side rule applies per clause, which matches the paper's guidance
/// of building from the smallest relation of a class.
pub fn mark_candidates(
    block: &QueryBlock,
    est: &Estimator<'_>,
    config: &OptimizerConfig,
) -> Vec<BfCandidate> {
    let mut out: Vec<BfCandidate> = Vec::new();
    for clause in &block.equi_clauses {
        let (lr, rr) = (clause.left_rel, clause.right_rel);
        let (l_rows, r_rows) = (est.base_rows(lr), est.base_rows(rr));
        // Orient: apply on the larger side (Heuristic 1).
        let (apply_rel, apply_col, build_rel, build_col) = if l_rows >= r_rows {
            (lr, clause.left, rr, clause.right)
        } else {
            (rr, clause.right, lr, clause.left)
        };
        let mut directions = vec![(apply_rel, apply_col, build_rel, build_col, false)];
        if config.h9_enabled {
            // Heuristic 9: also allow the smaller side to be the apply side.
            directions.push((build_rel, build_col, apply_rel, apply_col, true));
        }
        for (a_rel, a_col, b_rel, b_col, via_h9) in directions {
            if !legal_direction(block, a_rel, b_rel) {
                continue;
            }
            // Heuristic 2: apply relation must be large enough to bother.
            if est.base_rows(a_rel) < config.bf_min_apply_rows {
                continue;
            }
            // One candidate per (apply, build) column pair.
            let dup = out
                .iter()
                .any(|c| c.apply_col == a_col && c.build_col == b_col && c.apply_rel == a_rel);
            if dup {
                continue;
            }
            out.push(BfCandidate {
                apply_rel: a_rel,
                apply_col: a_col,
                build_rel: b_rel,
                build_col: b_col,
                deltas: Vec::new(),
                via_h9,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{chain_block, ChainSpec};
    use bfq_plan::RelKind;

    #[test]
    fn candidate_on_larger_side() {
        // rel0: 100k rows, rel1: 1k rows, clause between them.
        let fx = chain_block(&[
            ChainSpec::new("big", 100_000),
            ChainSpec::new("small", 1_000),
        ]);
        let est = fx.estimator();
        let cands = mark_candidates(&fx.block, &est, &OptimizerConfig::default());
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].apply_rel, 0, "filter applies to the big side");
        assert_eq!(cands[0].build_rel, 1);
        assert!(!cands[0].via_h9);
        assert!(cands[0].deltas.is_empty());
    }

    #[test]
    fn heuristic2_row_threshold() {
        let fx = chain_block(&[ChainSpec::new("a", 5_000), ChainSpec::new("b", 100)]);
        let est = fx.estimator();
        let mut config = OptimizerConfig {
            bf_min_apply_rows: 10_000.0,
            ..Default::default()
        };
        assert!(mark_candidates(&fx.block, &est, &config).is_empty());
        config.bf_min_apply_rows = 1_000.0;
        assert_eq!(mark_candidates(&fx.block, &est, &config).len(), 1);
    }

    #[test]
    fn heuristic9_adds_reverse_direction() {
        let fx = chain_block(&[
            ChainSpec::new("big", 100_000),
            ChainSpec::new("mid", 50_000),
        ]);
        let est = fx.estimator();
        let config = OptimizerConfig {
            h9_enabled: true,
            ..Default::default()
        };
        let cands = mark_candidates(&fx.block, &est, &config);
        assert_eq!(cands.len(), 2);
        assert!(cands.iter().any(|c| c.via_h9));
        assert!(cands.iter().any(|c| !c.via_h9));
    }

    #[test]
    fn anti_join_blocks_candidates() {
        let mut fx = chain_block(&[ChainSpec::new("a", 100_000), ChainSpec::new("b", 90_000)]);
        fx.block.rels[1].kind = RelKind::Anti;
        let est = fx.estimator();
        assert!(mark_candidates(&fx.block, &est, &OptimizerConfig::default()).is_empty());
    }

    #[test]
    fn left_outer_blocks_preserve_side_only() {
        let mut fx = chain_block(&[ChainSpec::new("a", 100_000), ChainSpec::new("b", 90_000)]);
        fx.block.rels[1].kind = RelKind::LeftOuter;
        let est = fx.estimator();
        let cands = mark_candidates(&fx.block, &est, &OptimizerConfig::default());
        // Building FROM the left-outer relation (applying to the preserved
        // side) is forbidden; applying TO the left-outer relation is fine.
        for c in &cands {
            assert_eq!(
                c.apply_rel, 1,
                "only the nullable side may receive a filter"
            );
        }
    }

    #[test]
    fn semi_join_allows_candidates_both_ways() {
        let mut fx = chain_block(&[ChainSpec::new("a", 100_000), ChainSpec::new("b", 90_000)]);
        fx.block.rels[1].kind = RelKind::Semi;
        let est = fx.estimator();
        let cands = mark_candidates(&fx.block, &est, &OptimizerConfig::default());
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].apply_rel, 0);
    }
}
