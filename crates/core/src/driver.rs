//! The optimizer driver: runs the BF-CBO pipeline over a query block, and
//! plans full logical trees (blocks + aggregation/projection/sort/limit and
//! derived relations).

use std::sync::Arc;
use std::time::{Duration, Instant};

use bfq_catalog::Catalog;
use bfq_common::{ColumnId, Datum, Result};
use bfq_cost::{Cost, CostModel, Estimator};
use bfq_expr::{estimate_selectivity, Expr, Layout};
use bfq_plan::{
    Bindings, Distribution, ExchangeKind, FilterSchedule, LogicalPlan, PhysicalNode, PhysicalPlan,
    QueryBlock, RelSource,
};

use crate::acyclic::join_tree;
use crate::candidates::mark_candidates;
use crate::costing::{build_program, initial_plan_lists, required_cols_per_rel, DerivedPlans};
use crate::naive::{naive_optimize, NaiveStats};
use crate::phase1::{collect_deltas, Phase1Stats};
use crate::phase2::{run_dp, Phase2Stats};
use crate::post::add_post_filters;
use crate::subplan::SubPlan;
use crate::{BloomMode, OptimizerConfig, SemijoinMode};

/// Aggregated optimizer telemetry (per query; block stats summed).
#[derive(Debug, Clone, Default)]
pub struct OptimizerStats {
    /// Total planning wall-clock milliseconds.
    pub planning_ms: f64,
    /// Number of query blocks optimized.
    pub blocks: usize,
    /// Bloom filter candidates marked.
    pub candidates: usize,
    /// Phase-1 telemetry (summed over blocks).
    pub phase1: Phase1Stats,
    /// Phase-2 telemetry (summed over blocks).
    pub phase2: Phase2Stats,
    /// Filters placed by cost-based optimization.
    pub cbo_filters: usize,
    /// Filters added by the post-processing pass.
    pub post_filters: usize,
    /// Blocks where the DP chose the semijoin program over per-join
    /// filters.
    pub programs: usize,
    /// Scheduled reducers across all chosen programs.
    pub program_reducers: usize,
    /// Naïve-mode telemetry, when [`BloomMode::Naive`] ran.
    pub naive: Option<NaiveStats>,
}

impl OptimizerStats {
    fn merge_block(&mut self, other: BlockStats) {
        self.blocks += 1;
        self.candidates += other.candidates;
        self.phase1.sets_visited += other.phase1.sets_visited;
        self.phase1.pairs_visited += other.phase1.pairs_visited;
        self.phase1.total_join_input += other.phase1.total_join_input;
        self.phase1.max_join_input = self.phase1.max_join_input.max(other.phase1.max_join_input);
        self.phase1.deltas_recorded += other.phase1.deltas_recorded;
        self.phase1.deltas_pruned_lossless += other.phase1.deltas_pruned_lossless;
        self.phase2.sets += other.phase2.sets;
        self.phase2.pairs += other.phase2.pairs;
        self.phase2.generated += other.phase2.generated;
        self.phase2.kept += other.phase2.kept;
        self.cbo_filters += other.cbo_filters;
        self.post_filters += other.post_filters;
        self.programs += other.programs;
        self.program_reducers += other.program_reducers;
        if other.naive.is_some() {
            self.naive = other.naive;
        }
    }
}

/// Per-block telemetry.
#[derive(Debug, Clone, Default)]
struct BlockStats {
    candidates: usize,
    phase1: Phase1Stats,
    phase2: Phase2Stats,
    cbo_filters: usize,
    post_filters: usize,
    programs: usize,
    program_reducers: usize,
    naive: Option<NaiveStats>,
}

/// A fully optimized query.
#[derive(Debug, Clone)]
pub struct OptimizedQuery {
    /// Executable physical plan with node ids assigned.
    pub plan: Arc<PhysicalPlan>,
    /// Telemetry.
    pub stats: OptimizerStats,
}

/// Optimize a single query block (the paper's unit of optimization).
///
/// `required` lists the virtual columns the block must output; `derived`
/// maps relation ordinals to pre-planned derived sub-plans.
pub fn optimize_block(
    block: &QueryBlock,
    bindings: &Bindings,
    catalog: &Catalog,
    required: &[ColumnId],
    derived: &DerivedPlans,
    config: &OptimizerConfig,
    next_filter: &mut u32,
) -> Result<(SubPlan, OptimizerStats)> {
    let start = Instant::now();
    let (mut sub, bstats, schedule) = optimize_block_inner(
        block,
        bindings,
        catalog,
        required,
        derived,
        config,
        next_filter,
    )?;
    // Standalone use: the block root is the query root, so the winning
    // program's reducer schedule (if any) attaches right here.
    if let Some(schedule) = schedule {
        sub.plan = sub.plan.with_schedule(Arc::new(schedule));
    }
    let mut stats = OptimizerStats::default();
    stats.merge_block(bstats);
    stats.planning_ms = start.elapsed().as_secs_f64() * 1e3;
    Ok((sub, stats))
}

fn optimize_block_inner(
    block: &QueryBlock,
    bindings: &Bindings,
    catalog: &Catalog,
    required: &[ColumnId],
    derived: &DerivedPlans,
    config: &OptimizerConfig,
    next_filter: &mut u32,
) -> Result<(SubPlan, BlockStats, Option<FilterSchedule>)> {
    let est = Estimator::with_modes(
        block,
        bindings,
        catalog,
        config.index_mode,
        config.bloom_layout,
    );
    let model = CostModel {
        params: config.cost.clone(),
        dop: config.dop,
    };
    let mut bstats = BlockStats::default();

    // §3.3: mark candidates (BF-CBO and the naïve strawman only — BF-Post
    // sees them during its own pass).
    let mut cands = match config.bloom_mode {
        BloomMode::Cbo | BloomMode::Naive => mark_candidates(block, &est, config),
        BloomMode::None | BloomMode::Post => Vec::new(),
    };
    bstats.candidates = cands.len();

    if config.bloom_mode == BloomMode::Naive {
        bstats.naive = Some(naive_optimize(
            block,
            &est,
            &cands,
            config,
            Duration::from_millis(config.naive_time_limit_ms),
        ));
        // The naïve mode is a measurement device; fall back to plain
        // planning for the executable plan.
        cands.clear();
    }

    // §3.4: first bottom-up pass — Δ collection.
    let mut h8_gated = false;
    if !cands.is_empty() {
        bstats.phase1 = collect_deltas(block, &est, &mut cands, config);
        // Heuristic 8: small queries skip Bloom planning entirely.
        if config.h8_enabled && bstats.phase1.total_join_input < config.h8_min_join_input {
            cands.clear();
            h8_gated = true;
        }
    }

    // Semijoin-program rewrite: for acyclic all-inner base-table blocks, a
    // two-pass Yannakakis-style program competes with per-join filters in
    // its own DP lane. H8's "too small to bother" verdict applies equally.
    let program = if config.semijoin == SemijoinMode::Auto
        && config.bloom_mode == BloomMode::Cbo
        && !h8_gated
    {
        let base_rows: Vec<f64> = (0..block.num_rels()).map(|r| est.base_rows(r)).collect();
        join_tree(block, &base_rows)
            .and_then(|tree| build_program(block, &est, &model, config, &tree, next_filter))
    } else {
        None
    };

    // §3.5: costed Bloom filter scan sub-plans.
    let required_per_rel = required_cols_per_rel(block, required);
    let initial = initial_plan_lists(
        block,
        &est,
        &model,
        config,
        &cands,
        &required_per_rel,
        derived,
        program.as_ref(),
        next_filter,
    )?;

    // §3.6: second bottom-up pass.
    let (mut best, p2) = run_dp(block, &est, &model, config, initial, program.as_ref())?;
    bstats.phase2 = p2;
    best.plan.visit(&mut |p| {
        if let PhysicalNode::HashJoin { builds, .. } = &p.node {
            bstats.cbo_filters += builds.len();
        }
    });

    // When the program lane won, its reducer pass becomes the plan's
    // filter schedule (hoisted to the query root by the caller).
    let mut schedule = None;
    if best.program {
        if let Some(spec) = &program {
            bstats.programs = 1;
            bstats.program_reducers = spec.edges.len();
            schedule = Some(spec.schedule());
        }
    }

    // §3.7: retained post-processing pass (BF-Post baseline, and the final
    // sweep after BF-CBO).
    if matches!(config.bloom_mode, BloomMode::Post | BloomMode::Cbo) {
        let (plan, added) = add_post_filters(&best.plan, block, &est, config, next_filter);
        best.plan = plan;
        bstats.post_filters = added;
    }
    Ok((best, bstats, schedule))
}

/// Optimize a full logical plan tree.
pub fn optimize(
    logical: &LogicalPlan,
    bindings: &mut Bindings,
    catalog: &Catalog,
    config: &OptimizerConfig,
) -> Result<OptimizedQuery> {
    let start = Instant::now();
    let mut planner = Planner {
        catalog,
        config,
        bindings,
        stats: OptimizerStats::default(),
        next_filter: 0,
        schedule_steps: Vec::new(),
    };
    let (plan, _cost) = planner.plan_node(logical, &[])?;
    // Hoist the winning programs' reducer passes to the query root: the
    // executors run the root schedule before any probe pipeline, which is
    // safe because programs are only planned for all-inner base-table
    // blocks (a reducer never depends on the enclosing tree's rows) and
    // filter ids are globally unique across blocks.
    let plan = if planner.schedule_steps.is_empty() {
        plan
    } else {
        plan.with_schedule(Arc::new(FilterSchedule {
            steps: std::mem::take(&mut planner.schedule_steps),
        }))
    };
    let mut next_id = 1;
    let plan = plan.with_ids(&mut next_id);
    let mut stats = planner.stats;
    stats.planning_ms = start.elapsed().as_secs_f64() * 1e3;
    Ok(OptimizedQuery { plan, stats })
}

struct Planner<'a> {
    catalog: &'a Catalog,
    config: &'a OptimizerConfig,
    bindings: &'a mut Bindings,
    stats: OptimizerStats,
    next_filter: u32,
    /// Reducer steps of every block whose program won, in planning order.
    schedule_steps: Vec<Arc<PhysicalPlan>>,
}

impl Planner<'_> {
    fn model(&self) -> CostModel {
        CostModel {
            params: self.config.cost.clone(),
            dop: self.config.dop,
        }
    }

    fn plan_node(
        &mut self,
        lp: &LogicalPlan,
        needed: &[ColumnId],
    ) -> Result<(Arc<PhysicalPlan>, Cost)> {
        match lp {
            LogicalPlan::Block(block) => self.plan_block(block, needed),
            LogicalPlan::OneRow => Ok((
                PhysicalPlan::new(
                    PhysicalNode::OneRow,
                    Layout::new(vec![]),
                    1.0,
                    Distribution::Single,
                ),
                Cost::of(0.0),
            )),
            LogicalPlan::Project { input, exprs } => {
                let mut child_needed = Vec::new();
                for oc in exprs {
                    child_needed.extend(oc.expr.columns());
                }
                let (child, cost) = self.plan_node(input, &child_needed)?;
                let layout = Layout::new(exprs.iter().map(|e| e.id).collect());
                let rows = child.est_rows;
                let work = Cost::of(rows * self.config.cost.cpu_operator * exprs.len() as f64);
                let node = PhysicalPlan::new(
                    PhysicalNode::Project {
                        input: child,
                        exprs: exprs.clone(),
                    },
                    layout,
                    rows,
                    Distribution::Single,
                );
                Ok((node, cost.plus(work)))
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
                having,
            } => {
                let mut child_needed = Vec::new();
                for g in group_by {
                    child_needed.extend(g.expr.columns());
                }
                for a in aggs {
                    if let Some(arg) = &a.arg {
                        child_needed.extend(arg.columns());
                    }
                }
                let (child, cost) = self.plan_node(input, &child_needed)?;
                let in_rows = child.est_rows;
                let groups = self.estimate_groups(group_by, in_rows);
                let mut rows = groups;
                if let Some(h) = having {
                    rows *= estimate_selectivity(h, &*self.bindings);
                }
                let rows = rows.max(1.0);
                let mut layout_cols: Vec<ColumnId> = group_by.iter().map(|g| g.id).collect();
                layout_cols.extend(aggs.iter().map(|a| a.output));
                let work = self.model().agg(in_rows, groups);
                let node = PhysicalPlan::new(
                    PhysicalNode::HashAgg {
                        input: child,
                        group_by: group_by.clone(),
                        aggs: aggs.clone(),
                        having: having.clone(),
                        est_groups: groups,
                    },
                    Layout::new(layout_cols),
                    rows,
                    Distribution::Single,
                );
                Ok((node, cost.plus(work)))
            }
            LogicalPlan::Sort { input, keys } => {
                let mut child_needed = needed.to_vec();
                for k in keys {
                    child_needed.extend(k.expr.columns());
                }
                let (child, cost) = self.plan_node(input, &child_needed)?;
                let rows = child.est_rows;
                let work = self.model().sort(rows);
                let layout = child.layout.clone();
                let node = PhysicalPlan::new(
                    PhysicalNode::Sort {
                        input: child,
                        keys: keys.clone(),
                        limit: None,
                    },
                    layout,
                    rows,
                    Distribution::Single,
                );
                Ok((node, cost.plus(work)))
            }
            LogicalPlan::Limit { input, n } => {
                let (child, cost) = self.plan_node(input, needed)?;
                let rows = child.est_rows.min(*n as f64);
                let layout = child.layout.clone();
                // ORDER BY + LIMIT fuses into a Top-N sort: the sort
                // truncates while it sorts, so both executors can bound
                // sort memory by the limit instead of the input.
                if let PhysicalNode::Sort {
                    input: sort_input,
                    keys,
                    limit: None,
                } = &child.node
                {
                    let node = PhysicalPlan::new(
                        PhysicalNode::Sort {
                            input: sort_input.clone(),
                            keys: keys.clone(),
                            limit: Some(*n),
                        },
                        layout,
                        rows,
                        Distribution::Single,
                    );
                    return Ok((node, cost));
                }
                let node = PhysicalPlan::new(
                    PhysicalNode::Limit {
                        input: child,
                        n: *n,
                    },
                    layout,
                    rows,
                    Distribution::Single,
                );
                Ok((node, cost))
            }
            LogicalPlan::ScalarFilter {
                input,
                subquery,
                pred,
                placeholder,
            } => {
                let (sub, sub_cost) = self.plan_node(subquery, &[])?;
                let mut child_needed = needed.to_vec();
                child_needed.extend(pred.columns().into_iter().filter(|c| c != placeholder));
                let (child, cost) = self.plan_node(input, &child_needed)?;
                let rows = (child.est_rows / 3.0).max(1.0);
                let layout = child.layout.clone();
                let work = Cost::of(child.est_rows * self.config.cost.cpu_operator);
                let node = PhysicalPlan::new(
                    PhysicalNode::ScalarSubst {
                        input: child,
                        subquery: sub,
                        pred: pred.clone(),
                        placeholder: *placeholder,
                    },
                    layout,
                    rows,
                    Distribution::Single,
                );
                Ok((node, cost.plus(sub_cost).plus(work)))
            }
        }
    }

    fn plan_block(
        &mut self,
        block: &QueryBlock,
        needed: &[ColumnId],
    ) -> Result<(Arc<PhysicalPlan>, Cost)> {
        // Pre-plan derived relations and refresh their statistics so the
        // estimator sees realistic row counts.
        let mut derived = DerivedPlans::new();
        for rel in &block.rels {
            if let RelSource::Derived(lp) = &rel.source {
                let (dplan, dcost) = self.plan_node(lp, &[])?;
                let binding = self.bindings.get(rel.rel_id)?;
                let mut stats = binding.stats.clone();
                stats.rows = dplan.est_rows.max(1.0);
                for cs in &mut stats.columns {
                    cs.ndv = cs.ndv.min(stats.rows).max(1.0);
                }
                self.bindings.set_stats(rel.rel_id, stats)?;
                derived.insert(rel.ordinal, (dplan, dcost));
            }
        }
        let (mut best, bstats, schedule) = optimize_block_inner(
            block,
            self.bindings,
            self.catalog,
            needed,
            &derived,
            self.config,
            &mut self.next_filter,
        )?;
        self.stats.merge_block(bstats);
        if let Some(schedule) = schedule {
            self.schedule_steps.extend(schedule.steps);
        }
        // Blocks hand a single stream to the operators above.
        let mut cost = best.cost;
        if best.dist != Distribution::Single {
            cost = cost.plus(self.model().gather(best.rows));
            let layout = best.plan.layout.clone();
            let rows = best.rows;
            best.plan = PhysicalPlan::new(
                PhysicalNode::Exchange {
                    input: best.plan,
                    kind: ExchangeKind::Gather,
                },
                layout,
                rows,
                Distribution::Single,
            );
        }
        Ok((best.plan, cost))
    }

    fn estimate_groups(&self, group_by: &[bfq_plan::OutputColumn], in_rows: f64) -> f64 {
        if group_by.is_empty() {
            return 1.0;
        }
        let mut groups = 1.0f64;
        for g in group_by {
            let ndv = match &g.expr {
                Expr::Column(c) => self
                    .bindings
                    .column_stats(*c)
                    .map(|s| s.ndv)
                    .unwrap_or_else(|| in_rows.sqrt()),
                Expr::Literal(Datum::Null) => 1.0,
                _ => in_rows.sqrt(),
            };
            groups *= ndv.max(1.0);
        }
        groups.clamp(1.0, in_rows.max(1.0))
    }
}

/// Convenience: optimize a bare block wrapped in nothing (used by tests and
/// experiment binaries working directly with synthetic blocks).
pub fn optimize_bare_block(
    block: &QueryBlock,
    bindings: &mut Bindings,
    catalog: &Catalog,
    config: &OptimizerConfig,
) -> Result<OptimizedQuery> {
    let logical = LogicalPlan::Block(block.clone());
    optimize(&logical, bindings, catalog, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{chain_block, running_example, ChainSpec};

    #[test]
    fn optimize_assigns_unique_ids_and_gathers() {
        let mut fx = running_example(0.1);
        let config = OptimizerConfig::with_mode(BloomMode::None);
        let catalog = fx.catalog.clone();
        let out = optimize_bare_block(&fx.block, &mut fx.bindings, &catalog, &config).unwrap();
        let mut ids = Vec::new();
        out.plan.visit(&mut |p| ids.push(p.id));
        let n = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), n);
        assert!(out.stats.planning_ms >= 0.0);
        assert_eq!(out.stats.blocks, 1);
        // Root is a Gather (plan output is single-stream).
        assert!(matches!(
            &out.plan.node,
            PhysicalNode::Exchange {
                kind: ExchangeKind::Gather,
                ..
            }
        ));
    }

    #[test]
    fn cbo_mode_places_filters_and_reports_stats() {
        let mut fx = running_example(1.0);
        let mut config = OptimizerConfig::with_mode(BloomMode::Cbo);
        config.bf_min_apply_rows = 100.0;
        let catalog = fx.catalog.clone();
        let out = optimize_bare_block(&fx.block, &mut fx.bindings, &catalog, &config).unwrap();
        assert!(out.stats.candidates >= 2);
        assert!(out.stats.cbo_filters >= 1);
        assert!(out.stats.phase1.pairs_visited > 0);
        assert!(out.stats.phase2.pairs > 0);
    }

    #[test]
    fn post_mode_adds_filters_without_changing_join_order() {
        let mut fx = chain_block(&[
            ChainSpec::new("a", 50_000),
            ChainSpec::new("b", 1_000).filtered(0.1),
        ]);
        let catalog = fx.catalog.clone();
        let none = optimize_bare_block(
            &fx.block,
            &mut fx.bindings,
            &catalog,
            &OptimizerConfig::with_mode(BloomMode::None),
        )
        .unwrap();
        let post = optimize_bare_block(
            &fx.block,
            &mut fx.bindings,
            &catalog,
            &OptimizerConfig::with_mode(BloomMode::Post),
        )
        .unwrap();
        assert_eq!(post.stats.cbo_filters, 0);
        assert!(post.stats.post_filters >= 1);
        // Join structure identical to the no-BF plan (same op sequence,
        // ignoring bloom annotations).
        let shape = |p: &Arc<PhysicalPlan>| {
            let mut ops = Vec::new();
            p.visit(&mut |n| {
                ops.push(std::mem::discriminant(&n.node));
            });
            ops
        };
        assert_eq!(shape(&none.plan), shape(&post.plan));
    }

    #[test]
    fn h8_gate_disables_bloom_for_small_queries() {
        let mut fx = running_example(0.05);
        let mut config = OptimizerConfig::with_mode(BloomMode::Cbo);
        config.bf_min_apply_rows = 10.0;
        config.h8_enabled = true;
        config.h8_min_join_input = 1e12;
        let catalog = fx.catalog.clone();
        let out = optimize_bare_block(&fx.block, &mut fx.bindings, &catalog, &config).unwrap();
        assert_eq!(
            out.stats.cbo_filters, 0,
            "H8 should have gated Bloom planning"
        );
    }

    #[test]
    fn naive_mode_records_stats_and_still_plans() {
        let mut fx = running_example(0.05);
        let mut config = OptimizerConfig::with_mode(BloomMode::Naive);
        config.bf_min_apply_rows = 10.0;
        config.naive_time_limit_ms = 2_000;
        let catalog = fx.catalog.clone();
        let out = optimize_bare_block(&fx.block, &mut fx.bindings, &catalog, &config).unwrap();
        let naive = out.stats.naive.expect("naive stats recorded");
        assert!(naive.steps > 0);
        assert!(out.plan.node_count() > 1, "fallback plan still produced");
    }
}
