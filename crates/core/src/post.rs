//! Post-processing application of Bloom filters (paper §3.7).
//!
//! This is both (a) the **BF-Post baseline** — optimize without Bloom
//! filters, then decorate the finished plan — and (b) the retained final
//! pass after BF-CBO ("Bloom filters are added in places where either
//! costing has determined they should be or where the pre-existing
//! post-processing approach would have marked one").
//!
//! For every hash join we try to push a filter built from each join key's
//! build side down to the probe-side scan of the key's relation. The pass
//! repeats the correctness rules and the selectivity/size/lossless
//! heuristics, but — crucially, and faithfully to post-processing — it does
//! **not** update any cardinality estimates: the plan shape is already
//! fixed, which is exactly the deficiency BF-CBO removes.

use std::sync::Arc;

use bfq_common::{FilterId, RelSet, TableId};
use bfq_cost::{BfAssumption, Estimator};
use bfq_plan::{BloomApply, BloomBuild, JoinKind, PhysicalNode, PhysicalPlan, QueryBlock};

use crate::OptimizerConfig;

/// Add post-processing Bloom filters to a finished block plan. Returns the
/// rewritten plan and the number of filters added.
pub fn add_post_filters(
    plan: &Arc<PhysicalPlan>,
    block: &QueryBlock,
    est: &Estimator<'_>,
    config: &OptimizerConfig,
    next_filter: &mut u32,
) -> (Arc<PhysicalPlan>, usize) {
    let mut added = 0;
    let plan = rewrite(plan, block, est, config, next_filter, &mut added);
    (plan, added)
}

/// Relations (block ordinals) scanned within a subtree.
fn subtree_rels(plan: &Arc<PhysicalPlan>, block: &QueryBlock) -> RelSet {
    let mut set = RelSet::EMPTY;
    plan.visit(&mut |p| {
        if let PhysicalNode::Scan { rel_id, .. } | PhysicalNode::DerivedScan { rel_id, .. } =
            &p.node
        {
            if let Some(ord) = block.ordinal_of(*rel_id) {
                set = set.with(ord);
            }
        }
    });
    set
}

fn rewrite(
    plan: &Arc<PhysicalPlan>,
    block: &QueryBlock,
    est: &Estimator<'_>,
    config: &OptimizerConfig,
    next_filter: &mut u32,
    added: &mut usize,
) -> Arc<PhysicalPlan> {
    // Rebuild children first so nested joins get their chances.
    let mut node = rebuild_children(plan, |child| {
        rewrite(child, block, est, config, next_filter, added)
    });

    if let PhysicalNode::HashJoin {
        outer,
        inner,
        kind,
        keys,
        builds,
        ..
    } = &mut node
    {
        // Filters may be built at inner and semi joins; building from the
        // inner of an anti or outer join is unsound (§3.3).
        if matches!(kind, JoinKind::Inner | JoinKind::Semi) {
            let delta = subtree_rels(inner, block);
            for &(outer_col, inner_col) in keys.iter() {
                let Some(apply_rel) = block.ordinal_of(outer_col.table) else {
                    continue;
                };
                let bf = BfAssumption {
                    apply_rel,
                    apply_col: outer_col,
                    build_rel: block.ordinal_of(inner_col.table).unwrap_or(apply_rel),
                    build_col: inner_col,
                    delta,
                };
                // Heuristic 2: apply relation large enough.
                if est.base_rows(apply_rel) < config.bf_min_apply_rows {
                    continue;
                }
                // Heuristic 3: lossless FK→PK filters are useless.
                if est.bf_is_lossless(&bf) {
                    continue;
                }
                // Heuristic 5: size budget.
                let ndv = est.effective_build_ndv(inner_col, delta);
                if ndv > config.bf_max_build_ndv {
                    continue;
                }
                // Heuristic 6: selectivity threshold.
                if est.bf_semi_selectivity(&bf) > config.bf_selectivity_threshold {
                    continue;
                }
                let id = FilterId(*next_filter);
                let apply = BloomApply {
                    filter: id,
                    column: outer_col,
                    predicted_fpr: est.bf_fpr(&bf),
                    predicted_pass: est.bf_pass_fraction(&bf),
                };
                if let Some(new_outer) = attach_apply(outer, outer_col.table, &apply) {
                    *next_filter += 1;
                    *outer = new_outer;
                    builds.push(BloomBuild {
                        filter: id,
                        column: inner_col,
                        expected_ndv: ndv,
                    });
                    *added += 1;
                }
            }
        }
    }

    let mut rebuilt = (**plan).clone();
    rebuilt.node = node;
    Arc::new(rebuilt)
}

/// Clone a node, mapping each child through `f`.
fn rebuild_children(
    plan: &Arc<PhysicalPlan>,
    mut f: impl FnMut(&Arc<PhysicalPlan>) -> Arc<PhysicalPlan>,
) -> PhysicalNode {
    let mut node = plan.node.clone();
    match &mut node {
        PhysicalNode::OneRow | PhysicalNode::Scan { .. } => {}
        PhysicalNode::DerivedScan { input, .. }
        | PhysicalNode::Filter { input, .. }
        | PhysicalNode::Exchange { input, .. }
        | PhysicalNode::Project { input, .. }
        | PhysicalNode::HashAgg { input, .. }
        | PhysicalNode::Sort { input, .. }
        | PhysicalNode::Limit { input, .. }
        | PhysicalNode::SemijoinReduce { input, .. } => *input = f(input),
        PhysicalNode::HashJoin { outer, inner, .. }
        | PhysicalNode::MergeJoin { outer, inner, .. }
        | PhysicalNode::NestLoopJoin { outer, inner, .. } => {
            *outer = f(outer);
            *inner = f(inner);
        }
        PhysicalNode::ScalarSubst {
            input, subquery, ..
        } => {
            *input = f(input);
            *subquery = f(subquery);
        }
    }
    node
}

/// Attach a [`BloomApply`] to the scan of `rel_id` inside `plan`, if it can
/// be reached without crossing an illegal boundary. Returns the rewritten
/// subtree, or `None` if the scan is unreachable or already filters this
/// column.
fn attach_apply(
    plan: &Arc<PhysicalPlan>,
    rel_id: TableId,
    apply: &BloomApply,
) -> Option<Arc<PhysicalPlan>> {
    let column = apply.column;
    let new_node = match &plan.node {
        PhysicalNode::Scan {
            rel_id: scan_rel,
            blooms,
            base,
            alias,
            projection,
            predicate,
        } if *scan_rel == rel_id => {
            if blooms.iter().any(|b| b.column == column) {
                return None; // already filtered on this column (e.g. by CBO)
            }
            let mut blooms = blooms.clone();
            blooms.push(apply.clone());
            PhysicalNode::Scan {
                base: *base,
                rel_id: *scan_rel,
                alias: alias.clone(),
                projection: projection.clone(),
                predicate: predicate.clone(),
                blooms,
            }
        }
        PhysicalNode::DerivedScan {
            rel_id: scan_rel,
            blooms,
            input,
            alias,
            predicate,
        } if *scan_rel == rel_id => {
            if blooms.iter().any(|b| b.column == column) {
                return None;
            }
            let mut blooms = blooms.clone();
            blooms.push(apply.clone());
            PhysicalNode::DerivedScan {
                input: input.clone(),
                rel_id: *scan_rel,
                alias: alias.clone(),
                predicate: predicate.clone(),
                blooms,
            }
        }
        PhysicalNode::Scan { .. } | PhysicalNode::DerivedScan { .. } => return None,
        PhysicalNode::Filter { input, predicate } => PhysicalNode::Filter {
            input: attach_apply(input, rel_id, apply)?,
            predicate: predicate.clone(),
        },
        PhysicalNode::Exchange { input, kind } => PhysicalNode::Exchange {
            input: attach_apply(input, rel_id, apply)?,
            kind: kind.clone(),
        },
        PhysicalNode::HashJoin {
            outer,
            inner,
            kind,
            keys,
            extra,
            builds,
        } => {
            let (new_outer, new_inner) = descend_join(outer, inner, *kind, rel_id, apply)?;
            PhysicalNode::HashJoin {
                outer: new_outer,
                inner: new_inner,
                kind: *kind,
                keys: keys.clone(),
                extra: extra.clone(),
                builds: builds.clone(),
            }
        }
        PhysicalNode::MergeJoin {
            outer,
            inner,
            kind,
            keys,
            extra,
        } => {
            let (new_outer, new_inner) = descend_join(outer, inner, *kind, rel_id, apply)?;
            PhysicalNode::MergeJoin {
                outer: new_outer,
                inner: new_inner,
                kind: *kind,
                keys: keys.clone(),
                extra: extra.clone(),
            }
        }
        PhysicalNode::NestLoopJoin {
            outer,
            inner,
            kind,
            predicate,
        } => {
            let (new_outer, new_inner) = descend_join(outer, inner, *kind, rel_id, apply)?;
            PhysicalNode::NestLoopJoin {
                outer: new_outer,
                inner: new_inner,
                kind: *kind,
                predicate: predicate.clone(),
            }
        }
        // Aggregations/projections change the row space; pushing a filter
        // through them is left to the paper's future work.
        _ => return None,
    };
    let mut rebuilt = (**plan).clone();
    rebuilt.node = new_node;
    Some(Arc::new(rebuilt))
}

/// Push into the side of a join holding `rel_id`, enforcing the boundary
/// rules: never across an anti join; never into the preserved side of a
/// left outer join.
fn descend_join(
    outer: &Arc<PhysicalPlan>,
    inner: &Arc<PhysicalPlan>,
    kind: JoinKind,
    rel_id: TableId,
    apply: &BloomApply,
) -> Option<(Arc<PhysicalPlan>, Arc<PhysicalPlan>)> {
    if kind == JoinKind::Anti {
        return None;
    }
    let in_outer = outer.layout.slot_of(apply.column).is_some();
    if in_outer {
        if kind == JoinKind::LeftOuter {
            // Outer side is row-preserving: filtering it is unsound.
            return None;
        }
        let new_outer = attach_apply(outer, rel_id, apply)?;
        Some((new_outer, inner.clone()))
    } else {
        let new_inner = attach_apply(inner, rel_id, apply)?;
        Some((outer.clone(), new_inner))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costing::{initial_plan_lists, required_cols_per_rel};
    use crate::phase2::run_dp;
    use crate::synth::{chain_block, running_example, ChainSpec, Fixture};
    use crate::{BloomMode, OptimizerConfig};
    use bfq_cost::CostModel;
    use std::collections::HashMap;

    fn plain_plan(fx: &Fixture, config: &OptimizerConfig) -> Arc<PhysicalPlan> {
        let est = fx.estimator();
        let model = CostModel::new(config.dop);
        let required = required_cols_per_rel(&fx.block, &[]);
        let mut next_filter = 0;
        let initial = initial_plan_lists(
            &fx.block,
            &est,
            &model,
            config,
            &[],
            &required,
            &HashMap::new(),
            None,
            &mut next_filter,
        )
        .unwrap();
        run_dp(&fx.block, &est, &model, config, initial, None)
            .unwrap()
            .0
            .plan
    }

    fn count_filters(plan: &Arc<PhysicalPlan>) -> (usize, usize) {
        let (mut applies, mut builds) = (0, 0);
        plan.visit(&mut |p| match &p.node {
            PhysicalNode::Scan { blooms, .. } | PhysicalNode::DerivedScan { blooms, .. } => {
                applies += blooms.len()
            }
            PhysicalNode::HashJoin { builds: b, .. } => builds += b.len(),
            _ => {}
        });
        (applies, builds)
    }

    #[test]
    fn post_adds_filter_on_filtered_build_side() {
        let fx = chain_block(&[
            ChainSpec::new("a", 50_000),
            ChainSpec::new("b", 1_000).filtered(0.1),
        ]);
        let config = OptimizerConfig::with_mode(BloomMode::Post);
        let plan = plain_plan(&fx, &config);
        let est = fx.estimator();
        let mut next = 0;
        let (rewritten, added) = add_post_filters(&plan, &fx.block, &est, &config, &mut next);
        assert_eq!(added, 1, "{}", rewritten.explain(&|c| c.to_string()));
        let (applies, builds) = count_filters(&rewritten);
        assert_eq!((applies, builds), (1, 1));
        // Estimates unchanged: the scan of `a` still claims its full rows.
        rewritten.visit(&mut |p| {
            if let PhysicalNode::Scan { alias, blooms, .. } = &p.node {
                if alias == "a" {
                    assert_eq!(blooms.len(), 1);
                    assert!(p.est_rows >= 49_000.0, "post must not re-estimate");
                }
            }
        });
    }

    #[test]
    fn post_skips_lossless_fk_filter() {
        // Unfiltered PK build side: Heuristic 3 blocks the filter. This is
        // the paper's Figure 1a scenario ("a Bloom filter cannot filter any
        // probe side rows in this case").
        let fx = chain_block(&[ChainSpec::new("a", 50_000), ChainSpec::new("b", 1_000)]);
        let config = OptimizerConfig::with_mode(BloomMode::Post);
        let plan = plain_plan(&fx, &config);
        let est = fx.estimator();
        let mut next = 0;
        let (_, added) = add_post_filters(&plan, &fx.block, &est, &config, &mut next);
        assert_eq!(added, 0);
    }

    #[test]
    fn post_respects_row_threshold() {
        let fx = chain_block(&[
            ChainSpec::new("a", 5_000),
            ChainSpec::new("b", 500).filtered(0.1),
        ]);
        let mut config = OptimizerConfig::with_mode(BloomMode::Post);
        config.bf_min_apply_rows = 10_000.0;
        let plan = plain_plan(&fx, &config);
        let est = fx.estimator();
        let mut next = 0;
        let (_, added) = add_post_filters(&plan, &fx.block, &est, &config, &mut next);
        assert_eq!(added, 0);
    }

    #[test]
    fn post_does_not_duplicate_cbo_filters() {
        // Run BF-CBO to get a plan that already carries a filter, then run
        // the post pass on it: the same (scan, column) must not get two.
        let fx = running_example(1.0);
        let mut config = OptimizerConfig::with_mode(BloomMode::Cbo);
        config.bf_min_apply_rows = 100.0;
        let est = fx.estimator();
        let model = CostModel::new(config.dop);
        let mut cands = crate::candidates::mark_candidates(&fx.block, &est, &config);
        crate::phase1::collect_deltas(&fx.block, &est, &mut cands, &config);
        let required = required_cols_per_rel(&fx.block, &[]);
        let mut next_filter = 0;
        let initial = initial_plan_lists(
            &fx.block,
            &est,
            &model,
            &config,
            &cands,
            &required,
            &HashMap::new(),
            None,
            &mut next_filter,
        )
        .unwrap();
        let (best, _) = run_dp(&fx.block, &est, &model, &config, initial, None).unwrap();
        let (before_applies, _) = count_filters(&best.plan);
        assert!(before_applies >= 1);
        let (rewritten, _) =
            add_post_filters(&best.plan, &fx.block, &est, &config, &mut next_filter);
        // No scan may filter the same column twice.
        rewritten.visit(&mut |p| {
            if let PhysicalNode::Scan { blooms, .. } = &p.node {
                let mut cols: Vec<_> = blooms.iter().map(|b| b.column).collect();
                let n = cols.len();
                cols.sort();
                cols.dedup();
                assert_eq!(cols.len(), n, "duplicate filter on one column");
            }
        });
    }
}
