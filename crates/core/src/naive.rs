//! The naïve single-phase integration of Bloom filters into bottom-up CBO
//! (paper §3.1) — the strawman whose planning-time explosion motivates the
//! two-phase design.
//!
//! "A naïve solution may maintain several uncosted sub-plans with unresolved
//! Bloom filter information. These uncosted, unresolved sub-plans would
//! inevitably be combined with relations that do not provide the build side
//! of the Bloom filter and, while uncosted, these sub-plans cannot be
//! pruned, so the number of sub-plans that need to be maintained would grow
//! exponentially with each join that does not resolve the Bloom filter."
//!
//! This module reproduces that behaviour measurably: scan sub-plans carry
//! unresolved candidate subsets; plan lists prune *only* fully-costed
//! sub-plans; every (outer × inner × join-variant) combination of
//! unprunable sub-plans is materialized. A step budget and wall-clock limit
//! let the blow-up experiment (§3.1 reports 28 ms / 375 ms / 56 s / >30 min
//! for 3/4/5/6-way joins) terminate.

use std::time::{Duration, Instant};

use bfq_common::RelSet;
use bfq_cost::{BfAssumption, Estimator};
use bfq_plan::QueryBlock;

use crate::candidates::BfCandidate;
use crate::enumerate::{enumerate_sets, splits};
use crate::OptimizerConfig;

/// Outcome of a naïve optimization run.
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveStats {
    /// Wall-clock planning time.
    pub elapsed: Duration,
    /// Sub-plan combinations examined.
    pub steps: u64,
    /// Sub-plans materialized across all plan lists.
    pub subplans: u64,
    /// Whether the run finished within its budgets.
    pub completed: bool,
}

/// A naïve sub-plan: cost is `None` while any Bloom filter is unresolved.
#[derive(Debug, Clone)]
struct NaiveSubPlan {
    rows: f64,
    cost: Option<f64>,
    /// Indices into the candidate list that are applied but unresolved.
    unresolved: Vec<u8>,
    /// Distinguishes join variants (algorithm × distribution) so unprunable
    /// sub-plans multiply exactly as they would in a real plan list.
    #[allow(dead_code)]
    variant: u8,
}

/// Join variants enumerated per pair (3 algorithms ≈ hash/merge/NL each with
/// a representative distribution choice).
const VARIANTS: u8 = 3;

/// Run the naïve single-phase optimization, bounded by `config`'s step
/// budget and `time_limit`.
pub fn naive_optimize(
    block: &QueryBlock,
    est: &Estimator<'_>,
    candidates: &[BfCandidate],
    config: &OptimizerConfig,
    time_limit: Duration,
) -> NaiveStats {
    let start = Instant::now();
    let mut steps: u64 = 0;
    let mut subplans: u64 = 0;
    let deadline = start + time_limit;

    let n = block.num_rels();
    let sets = enumerate_sets(block);
    let mut lists: Vec<Vec<NaiveSubPlan>> = vec![Vec::new(); 1usize << n];

    // Scan sub-plans: the plain scan plus one uncosted sub-plan per
    // non-empty subset of the relation's candidates (unknown δ ⇒ unknown
    // cardinality ⇒ uncosted).
    for rel in 0..n {
        let list = &mut lists[RelSet::single(rel).0 as usize];
        list.push(NaiveSubPlan {
            rows: est.base_rows(rel),
            cost: Some(est.raw_rows(rel)),
            unresolved: Vec::new(),
            variant: 0,
        });
        let mine: Vec<u8> = candidates
            .iter()
            .enumerate()
            .filter(|(_, c)| c.apply_rel == rel)
            .map(|(i, _)| i as u8)
            .collect();
        // All non-empty subsets of this relation's candidates.
        for mask in 1u32..(1u32 << mine.len().min(8)) {
            let subset: Vec<u8> = mine
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &c)| c)
                .collect();
            list.push(NaiveSubPlan {
                rows: est.base_rows(rel),
                cost: None,
                unresolved: subset,
                variant: 0,
            });
            subplans += 1;
        }
    }

    'outer: for set in &sets {
        if set.len() < 2 {
            continue;
        }
        let mut new_list: Vec<NaiveSubPlan> = Vec::new();
        let mut best_costed: Option<f64> = None;
        for split in splits(block, *set) {
            let outer_list = std::mem::take(&mut lists[split.outer.0 as usize]);
            let inner_list = std::mem::take(&mut lists[split.inner.0 as usize]);
            for osp in &outer_list {
                for isp in &inner_list {
                    for variant in 0..VARIANTS {
                        steps += 1;
                        if steps.is_multiple_of(4096) && Instant::now() > deadline {
                            lists[split.outer.0 as usize] = outer_list;
                            lists[split.inner.0 as usize] = inner_list;
                            break 'outer;
                        }
                        if steps > config.naive_step_budget {
                            lists[split.outer.0 as usize] = outer_list;
                            lists[split.inner.0 as usize] = inner_list;
                            break 'outer;
                        }
                        // Resolve any unresolved candidate whose build
                        // relation appears on the inner side. Resolution is
                        // "a necessarily recursive process in which the
                        // sub-plan is traversed to the leaf table scan" —
                        // modelled by the per-δ estimator evaluation.
                        let mut unresolved = Vec::new();
                        let mut rows = osp.rows * isp.rows.max(1.0).sqrt();
                        for &ci in &osp.unresolved {
                            let cand = &candidates[ci as usize];
                            if split.inner.contains(cand.build_rel) {
                                let bf = BfAssumption {
                                    apply_rel: cand.apply_rel,
                                    apply_col: cand.apply_col,
                                    build_rel: cand.build_rel,
                                    build_col: cand.build_col,
                                    delta: split.inner,
                                };
                                rows *= est.bf_pass_fraction(&bf);
                            } else {
                                unresolved.push(ci);
                            }
                        }
                        unresolved.extend(isp.unresolved.iter().copied());
                        unresolved.sort_unstable();
                        unresolved.dedup();

                        let costed =
                            unresolved.is_empty() && osp.cost.is_some() && isp.cost.is_some();
                        if costed {
                            let c = osp.cost.unwrap_or(0.0)
                                + isp.cost.unwrap_or(0.0)
                                + rows
                                + variant as f64;
                            // Costed sub-plans prune normally: keep the best.
                            if best_costed.is_none_or(|b| c < b) {
                                best_costed = Some(c);
                            }
                        } else {
                            // Uncosted: CANNOT be pruned — keep every one.
                            new_list.push(NaiveSubPlan {
                                rows,
                                cost: None,
                                unresolved,
                                variant,
                            });
                            subplans += 1;
                        }
                    }
                }
            }
            lists[split.outer.0 as usize] = outer_list;
            lists[split.inner.0 as usize] = inner_list;
        }
        if let Some(c) = best_costed {
            new_list.push(NaiveSubPlan {
                rows: est.join_card(*set),
                cost: Some(c),
                unresolved: Vec::new(),
                variant: 0,
            });
            subplans += 1;
        }
        lists[set.0 as usize] = new_list;
    }

    let elapsed = start.elapsed();
    let completed = steps <= config.naive_step_budget && Instant::now() <= deadline;
    NaiveStats {
        elapsed,
        steps,
        subplans,
        completed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::mark_candidates;
    use crate::synth::{chain_block, ChainSpec};

    fn chain_fixture(n: usize) -> crate::synth::Fixture {
        let specs: Vec<ChainSpec> = (0..n)
            .map(|i| {
                let rows = 100_000usize >> i; // decreasing sizes
                ChainSpec::new(format!("t{i}"), rows.max(100)).filtered(0.5)
            })
            .collect();
        chain_block(&specs)
    }

    fn run(n: usize, budget: u64) -> NaiveStats {
        let fx = chain_fixture(n);
        let est = fx.estimator();
        let config = OptimizerConfig {
            bf_min_apply_rows: 10.0,
            naive_step_budget: budget,
            ..Default::default()
        };
        let cands = mark_candidates(&fx.block, &est, &config);
        naive_optimize(&fx.block, &est, &cands, &config, Duration::from_secs(10))
    }

    #[test]
    fn small_joins_complete() {
        let s3 = run(3, 10_000_000);
        assert!(s3.completed);
        assert!(s3.steps > 0);
    }

    #[test]
    fn steps_grow_super_exponentially() {
        let s2 = run(2, u64::MAX);
        let s3 = run(3, u64::MAX);
        let s4 = run(4, u64::MAX);
        assert!(
            s3.steps > s2.steps * 2,
            "3-way {} vs 2-way {}",
            s3.steps,
            s2.steps
        );
        assert!(
            s4.steps as f64 > s3.steps as f64 * 4.0,
            "4-way {} vs 3-way {}",
            s4.steps,
            s3.steps
        );
        // The growth *rate* itself grows (super-exponential shape).
        let r32 = s3.steps as f64 / s2.steps.max(1) as f64;
        let r43 = s4.steps as f64 / s3.steps.max(1) as f64;
        assert!(r43 > r32, "rates {r32} -> {r43} should accelerate");
    }

    #[test]
    fn budget_aborts_cleanly() {
        let s = run(6, 10_000);
        assert!(!s.completed);
        assert!(s.steps >= 10_000);
    }
}
