//! **BF-CBO**: Bloom-filter-aware bottom-up cost-based optimization.
//!
//! This crate is the reproduction of the paper's contribution (Zeyl et al.,
//! SIGMOD-Companion 2025). The pipeline over one query block:
//!
//! 1. [`candidates`] — *Marking Bloom filter candidates* (§3.3): pick
//!    `(apply, build)` column pairs from hashable join clauses, applying
//!    Heuristics 1–2 and the outer/anti-join correctness restrictions.
//! 2. [`phase1`] — *First bottom-up phase* (§3.4): enumerate join
//!    combinations without costing anything, populating each candidate's
//!    `Δ = [δ₀, δ₁, …]` of feasible build-side relation sets, pruning
//!    lossless FK→PK δ's (Heuristic 3).
//! 3. [`costing`] — *Costing Bloom filter sub-plans* (§3.5): create fully
//!    costed Bloom-filter scan sub-plans per δ combination (Heuristic 4
//!    applies all candidates simultaneously; Heuristics 5–6 drop oversized
//!    or unselective filters) and insert them into the relations' plan
//!    lists under δ-dominance pruning.
//! 4. [`phase2`] — *Second bottom-up phase* (§3.6): ordinary bottom-up DP
//!    over the enlarged plan lists subject to δ-legality: resolution only at
//!    hash joins whose build side covers δ, the Figure-3c chained-filter
//!    exception, and propagation of unresolved filters.
//! 5. [`post`] — *Post-processing* (§3.7): the BF-Post baseline, also run
//!    after BF-CBO to catch filters costing could not see.
//!
//! [`naive`] implements the strawman single-phase integration whose
//! super-exponential planning time motivates the two-phase design (§3.1).

pub mod acyclic;
pub mod cache;
pub mod candidates;
pub mod costing;
pub mod driver;
pub mod enumerate;
pub mod naive;
pub mod phase1;
pub mod phase2;
pub mod post;
pub mod subplan;
pub mod synth;

pub use acyclic::{join_tree, JoinTree, JoinTreeEdge};
pub use cache::{CachedPlan, PlanCache, PlanCacheStats};
pub use candidates::{mark_candidates, BfCandidate};
pub use driver::{optimize, optimize_bare_block, optimize_block, OptimizedQuery, OptimizerStats};
pub use subplan::{PendingBf, PlanList, SubPlan};

pub use bfq_bloom::BloomLayout;
pub use bfq_common::Determinism;
use bfq_cost::CostParams;
pub use bfq_index::IndexMode;

/// Whether the optimizer may rewrite acyclic join blocks into two-pass
/// semijoin programs (a scheduled DAG of Bloom reducers, Yannakakis-style)
/// as a costed alternative to per-join runtime filters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SemijoinMode {
    /// Never consider semijoin programs.
    Off,
    /// Offer a semijoin program alongside per-join filters whenever the
    /// block's join graph is acyclic (GYO), and let the DP pick on cost.
    #[default]
    Auto,
}

impl SemijoinMode {
    /// Canonical knob spelling, as accepted by `SET semijoin`.
    pub fn label(self) -> &'static str {
        match self {
            SemijoinMode::Off => "off",
            SemijoinMode::Auto => "auto",
        }
    }
}

impl std::fmt::Display for SemijoinMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for SemijoinMode {
    type Err = bfq_common::BfqError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "off" => Ok(SemijoinMode::Off),
            "auto" => Ok(SemijoinMode::Auto),
            other => Err(bfq_common::BfqError::invalid(format!(
                "unknown semijoin `{other}` (off|auto)"
            ))),
        }
    }
}

/// How Bloom filters participate in optimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BloomMode {
    /// No Bloom filters anywhere (the paper's "No BF" baseline).
    None,
    /// Optimize without Bloom filters, then add them in a post-processing
    /// walk (the paper's BF-Post baseline, §3.7/§4).
    Post,
    /// Full two-phase Bloom-filter-aware CBO (the paper's BF-CBO),
    /// followed by the retained post-processing pass.
    Cbo,
    /// The naïve single-phase integration of §3.1 (for the blow-up
    /// experiment only; guarded by a step budget).
    Naive,
}

/// Optimizer configuration: mode, DOP, cost parameters and the heuristic
/// thresholds of §3.10/§4.1.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Bloom filter mode.
    pub bloom_mode: BloomMode,
    /// Degree of parallelism assumed by the cost model and executor.
    pub dop: usize,
    /// Cost model constants.
    pub cost: CostParams,
    /// Heuristic 2: only mark candidates on relations with at least this
    /// many (estimated, post-local-predicate) rows. Paper: 10 000.
    pub bf_min_apply_rows: f64,
    /// Heuristic 6: keep a filter only if its semi-join selectivity
    /// (excluding false positives) is at most this. Paper: 2/3.
    pub bf_selectivity_threshold: f64,
    /// Heuristic 5: drop filters whose upper-bound build-side NDV exceeds
    /// this (keeps filters L2-resident). Paper: 2 000 000.
    pub bf_max_build_ndv: f64,
    /// Heuristic 7 master switch: cap Bloom-filter sub-plans per relation.
    pub h7_enabled: bool,
    /// Heuristic 7: if a relation accumulates more than this many BF
    /// sub-plans, prune to the single fewest-rows one. Paper: 4.
    pub h7_max_subplans: usize,
    /// Heuristic 8 master switch: skip Bloom planning entirely for small
    /// queries.
    pub h8_enabled: bool,
    /// Heuristic 8: total join-input cardinality below which Bloom
    /// candidates are skipped.
    pub h8_min_join_input: f64,
    /// Heuristic 9: also consider candidates on the *smaller* relation of a
    /// clause, keeping only δ's smaller than the apply side.
    pub h9_enabled: bool,
    /// Step budget for [`BloomMode::Naive`] (sub-plan combinations examined)
    /// so the blow-up experiment terminates.
    pub naive_step_budget: u64,
    /// Wall-clock limit for [`BloomMode::Naive`] in milliseconds.
    pub naive_time_limit_ms: u64,
    /// Cap on Bloom-filter scan sub-plans generated per relation (safety
    /// valve against pathological Δ products; far above anything TPC-H
    /// produces).
    pub max_bf_subplans_per_rel: usize,
    /// How much of the per-chunk zone-map/Bloom index (`bfq-index`) scans
    /// consult at runtime — and the estimator consults at plan time, so
    /// data skipping feeds back into plan choice. Off / zone maps only /
    /// zone maps + chunk Bloom probes.
    pub index_mode: IndexMode,
    /// Bit-placement layout for runtime Bloom filters: `blocked` (both
    /// bits in one 64-byte block, one miss per probe — the default) or
    /// `standard` (uniform bits, two cache misses per probe — kept as the
    /// equivalence oracle). The estimator's FPR math follows the layout,
    /// and the knob participates in the plan-cache fingerprint.
    pub bloom_layout: BloomLayout,
    /// How much ordering the executor's sinks and exchanges preserve:
    /// `strict` (bit-identical to the eager executor, the default and the
    /// equivalence oracle) or `fast` (per-worker partial aggregation,
    /// partial-sort merge and streamed exchanges — same row set, stable
    /// run-to-run order at fixed DOP). Participates in the plan-cache
    /// fingerprint like every other knob.
    pub determinism: Determinism,
    /// Whether the executor records per-node runtime profiles (wall time,
    /// morsel counts) for `EXPLAIN ANALYZE`. Purely an execution knob — it
    /// does **not** change plan choice and stays out of the plan-cache
    /// fingerprint.
    pub profile: bool,
    /// Per-statement wall-clock limit in milliseconds (0 = no limit).
    /// Enforced cooperatively by the executor at morsel granularity. An
    /// execution knob like [`OptimizerConfig::profile`]: normalized out of
    /// the plan-cache fingerprint.
    pub statement_timeout_ms: u64,
    /// Per-query cap on rows simultaneously buffered between operators
    /// (0 = no cap), enforced against the executor's live buffered-rows
    /// gauge. Execution-only; stays out of the plan-cache fingerprint.
    pub memory_budget_rows: u64,
    /// Semijoin-program rewrite mode (see [`SemijoinMode`]). Plan-affecting
    /// and therefore part of the plan-cache fingerprint.
    pub semijoin: SemijoinMode,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            bloom_mode: BloomMode::Cbo,
            dop: 4,
            cost: CostParams::default(),
            bf_min_apply_rows: 10_000.0,
            bf_selectivity_threshold: 2.0 / 3.0,
            bf_max_build_ndv: 2_000_000.0,
            h7_enabled: false,
            h7_max_subplans: 4,
            h8_enabled: false,
            h8_min_join_input: 100_000.0,
            h9_enabled: false,
            naive_step_budget: 50_000_000,
            naive_time_limit_ms: 60_000,
            max_bf_subplans_per_rel: 64,
            index_mode: IndexMode::default(),
            bloom_layout: BloomLayout::default(),
            determinism: Determinism::default(),
            profile: true,
            statement_timeout_ms: 0,
            memory_budget_rows: 0,
            semijoin: SemijoinMode::default(),
        }
    }
}

impl OptimizerConfig {
    /// A config with the given mode and defaults elsewhere.
    pub fn with_mode(mode: BloomMode) -> Self {
        OptimizerConfig {
            bloom_mode: mode,
            ..Default::default()
        }
    }

    /// Builder-style DOP override.
    pub fn dop(mut self, dop: usize) -> Self {
        self.dop = dop.max(1);
        self
    }

    /// Builder-style Heuristic 7 toggle.
    pub fn heuristic7(mut self, enabled: bool) -> Self {
        self.h7_enabled = enabled;
        self
    }

    /// Builder-style index-mode override (data-skipping ablation knob).
    pub fn index_mode(mut self, mode: IndexMode) -> Self {
        self.index_mode = mode;
        self
    }

    /// Builder-style Bloom filter layout override.
    pub fn bloom_layout(mut self, layout: BloomLayout) -> Self {
        self.bloom_layout = layout;
        self
    }

    /// Builder-style determinism-mode override.
    pub fn determinism(mut self, mode: Determinism) -> Self {
        self.determinism = mode;
        self
    }

    /// Builder-style semijoin-program mode override.
    pub fn semijoin(mut self, mode: SemijoinMode) -> Self {
        self.semijoin = mode;
        self
    }
}
