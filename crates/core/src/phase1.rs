//! First bottom-up phase: Δ collection (paper §3.4).
//!
//! "We simulate the process of combining relations as in normal bottom-up
//! CBO. However, instead of costing any sub-plans, we only populate the list
//! of δ relation sets, Δ, that are observed during this process."
//!
//! For every ordered join pair whose outer side contains a candidate's apply
//! relation and whose inner (build) side supplies the candidate's build
//! relation, the inner set is a feasible δ. Heuristic 3 prunes δ's whose
//! filter would be lossless (FK on the apply side referencing a primary key
//! that the δ join leaves unfiltered); Heuristic 9 candidates additionally
//! require the δ join to be smaller than the apply relation.

use bfq_cost::{BfAssumption, Estimator};
use bfq_plan::QueryBlock;

use crate::candidates::BfCandidate;
use crate::enumerate::{enumerate_sets, splits};
use crate::OptimizerConfig;

/// Statistics gathered during the first pass (feeds Heuristic 8 and the
/// experiment harness).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Phase1Stats {
    /// Number of relation sets visited.
    pub sets_visited: usize,
    /// Number of ordered join pairs visited.
    pub pairs_visited: usize,
    /// Cumulative estimated cardinality of all join inputs (Heuristic 8's
    /// "total join-input cardinality").
    pub total_join_input: f64,
    /// Largest single join input seen.
    pub max_join_input: f64,
    /// Number of δ's recorded across all candidates.
    pub deltas_recorded: usize,
    /// Number of δ's pruned by Heuristic 3.
    pub deltas_pruned_lossless: usize,
}

/// Run the first bottom-up pass, populating each candidate's Δ list.
pub fn collect_deltas(
    block: &QueryBlock,
    est: &Estimator<'_>,
    candidates: &mut [BfCandidate],
    _config: &OptimizerConfig,
) -> Phase1Stats {
    let mut stats = Phase1Stats::default();
    let sets = enumerate_sets(block);
    for set in sets {
        if set.len() < 2 {
            continue;
        }
        stats.sets_visited += 1;
        for split in splits(block, set) {
            stats.pairs_visited += 1;
            let outer_rows = est.join_card(split.outer);
            let inner_rows = est.join_card(split.inner);
            stats.total_join_input += outer_rows + inner_rows;
            stats.max_join_input = stats.max_join_input.max(outer_rows).max(inner_rows);

            for cand in candidates.iter_mut() {
                // The Bloom filter must be buildable on the inner (build)
                // side and applied somewhere inside the outer side.
                if !split.outer.contains(cand.apply_rel) || !split.inner.contains(cand.build_rel) {
                    continue;
                }
                let delta = split.inner;
                if cand.deltas.contains(&delta) {
                    continue;
                }
                let assumption = BfAssumption {
                    apply_rel: cand.apply_rel,
                    apply_col: cand.apply_col,
                    build_rel: cand.build_rel,
                    build_col: cand.build_col,
                    delta,
                };
                // Heuristic 3: a lossless FK→PK filter removes nothing.
                if est.bf_is_lossless(&assumption) {
                    stats.deltas_pruned_lossless += 1;
                    continue;
                }
                // Heuristic 9 candidates: δ must be smaller than the apply
                // relation (otherwise the "small side" filter is pointless).
                if cand.via_h9 && est.join_card(delta) >= est.base_rows(cand.apply_rel) {
                    continue;
                }
                cand.add_delta(delta);
                stats.deltas_recorded += 1;
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::mark_candidates;
    use crate::synth::{chain_block, running_example, ChainSpec};
    use bfq_common::RelSet;

    #[test]
    fn paper_example_delta_lists() {
        // The §3 running example: BFC on t1 (build t2) and on t3 (build t2).
        // Expected after phase 1 (Example 3.2):
        //   t1.bfc1: Δ = [{t2}, {t2,t3}]
        //   t3.bfc1: Δ = [{t2}, {t1,t2}]
        // (modulo Heuristic 3, which does not fire for t1 because t2 is
        //  filtered; t3's candidate builds from t2's FK column, not a PK, so
        //  H3 does not fire there either.)
        let fx = running_example(1.0);
        let est = fx.estimator();
        let config = OptimizerConfig {
            bf_min_apply_rows: 100.0, // scaled-down fixture
            ..Default::default()
        };
        let mut cands = mark_candidates(&fx.block, &est, &config);
        assert_eq!(cands.len(), 2, "{cands:?}");
        let stats = collect_deltas(&fx.block, &est, &mut cands, &config);
        assert!(stats.pairs_visited >= 6);
        let t1_cand = cands.iter().find(|c| c.apply_rel == 0).unwrap();
        assert_eq!(
            t1_cand.deltas,
            vec![RelSet::single(1), RelSet::from_iter([1, 2])]
        );
        let t3_cand = cands.iter().find(|c| c.apply_rel == 2).unwrap();
        assert_eq!(
            t3_cand.deltas,
            vec![RelSet::single(1), RelSet::from_iter([0, 1])]
        );
    }

    #[test]
    fn heuristic3_prunes_lossless_pk_delta() {
        // Chain a(big) -> b(unfiltered): a.fk references b.pk and b has no
        // local predicate, so δ={b} is lossless and must be pruned.
        let fx = chain_block(&[ChainSpec::new("a", 50_000), ChainSpec::new("b", 1_000)]);
        let est = fx.estimator();
        let config = OptimizerConfig::default();
        let mut cands = mark_candidates(&fx.block, &est, &config);
        assert_eq!(cands.len(), 1);
        let stats = collect_deltas(&fx.block, &est, &mut cands, &config);
        assert!(cands[0].deltas.is_empty(), "{:?}", cands[0].deltas);
        assert!(stats.deltas_pruned_lossless >= 1);
    }

    #[test]
    fn filtered_pk_delta_survives_h3() {
        let fx = chain_block(&[
            ChainSpec::new("a", 50_000),
            ChainSpec::new("b", 1_000).filtered(0.1),
        ]);
        let est = fx.estimator();
        let config = OptimizerConfig::default();
        let mut cands = mark_candidates(&fx.block, &est, &config);
        collect_deltas(&fx.block, &est, &mut cands, &config);
        assert_eq!(cands[0].deltas, vec![RelSet::single(1)]);
    }

    #[test]
    fn join_input_cardinality_accumulates() {
        let fx = running_example(0.1);
        let est = fx.estimator();
        let config = OptimizerConfig {
            bf_min_apply_rows: 10.0,
            ..Default::default()
        };
        let mut cands = mark_candidates(&fx.block, &est, &config);
        let stats = collect_deltas(&fx.block, &est, &mut cands, &config);
        assert!(stats.total_join_input > 0.0);
        assert!(stats.max_join_input <= stats.total_join_input);
        assert!(stats.max_join_input >= est.base_rows(0));
    }

    #[test]
    fn h9_candidate_requires_small_delta() {
        // Both relations large and similar: the H9 reverse candidate's δ
        // (the big side) is not smaller than its apply side, so no δ.
        let fx = chain_block(&[ChainSpec::new("big", 60_000), ChainSpec::new("mid", 50_000)]);
        let est = fx.estimator();
        let config = OptimizerConfig {
            h9_enabled: true,
            ..Default::default()
        };
        let mut cands = mark_candidates(&fx.block, &est, &config);
        collect_deltas(&fx.block, &est, &mut cands, &config);
        let h9 = cands.iter().find(|c| c.via_h9).unwrap();
        assert!(h9.deltas.is_empty());
    }
}
