//! Point-in-time metric snapshots and Prometheus text exposition.

use std::fmt::Write as _;

/// A latency summary: p50/p95/p99 quantiles plus count and sum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SummarySnapshot {
    /// Metric name (by convention `*_seconds`; values are stored in ns).
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of observations, nanoseconds.
    pub sum_ns: u64,
    /// 50th percentile, nanoseconds.
    pub q50_ns: u64,
    /// 95th percentile, nanoseconds.
    pub q95_ns: u64,
    /// 99th percentile, nanoseconds.
    pub q99_ns: u64,
}

/// A point-in-time copy of an engine's metrics.
///
/// Renders to the Prometheus text exposition format (counters and
/// summaries) and parses back exactly: `parse_prometheus_text(x.to_prometheus_text()) == x`
/// because nanosecond values are printed as seconds with nine decimal
/// places, which is lossless for any span below ~104 days.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Counter metrics, in render order.
    pub counters: Vec<(String, u64)>,
    /// Latency summaries, in render order.
    pub summaries: Vec<SummarySnapshot>,
}

impl MetricsSnapshot {
    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Look up a summary by name.
    pub fn summary(&self, name: &str) -> Option<&SummarySnapshot> {
        self.summaries.iter().find(|s| s.name == name)
    }

    /// Render in the Prometheus text exposition format.
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for s in &self.summaries {
            let _ = writeln!(out, "# TYPE {} summary", s.name);
            let _ = writeln!(out, "{}{{quantile=\"0.5\"}} {}", s.name, secs(s.q50_ns));
            let _ = writeln!(out, "{}{{quantile=\"0.95\"}} {}", s.name, secs(s.q95_ns));
            let _ = writeln!(out, "{}{{quantile=\"0.99\"}} {}", s.name, secs(s.q99_ns));
            let _ = writeln!(out, "{}_sum {}", s.name, secs(s.sum_ns));
            let _ = writeln!(out, "{}_count {}", s.name, s.count);
        }
        out
    }

    /// Parse text produced by [`MetricsSnapshot::to_prometheus_text`].
    ///
    /// Accepts the subset of the exposition format this crate emits
    /// (counters, and summaries with 0.5/0.95/0.99 quantiles); unknown
    /// lines are an error so drift between renderer and parser is caught.
    pub fn parse_prometheus_text(text: &str) -> Result<MetricsSnapshot, String> {
        let mut snap = MetricsSnapshot::default();
        let mut lines = text.lines().peekable();
        while let Some(line) = lines.next() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (name, kind) = parse_type_line(line)?;
            match kind {
                "counter" => {
                    let sample = lines.next().ok_or("missing counter sample")?;
                    let (sample_name, value) = split_sample(sample)?;
                    if sample_name != name {
                        return Err(format!("counter sample `{sample_name}` after `{name}`"));
                    }
                    let value: u64 = value
                        .parse()
                        .map_err(|_| format!("bad counter value `{value}`"))?;
                    snap.counters.push((name.to_string(), value));
                }
                "summary" => {
                    let mut q = [0u64; 3];
                    for (idx, want) in ["0.5", "0.95", "0.99"].iter().enumerate() {
                        let sample = lines.next().ok_or("missing quantile sample")?;
                        let (sample_name, value) = split_sample(sample)?;
                        let expect = format!("{name}{{quantile=\"{want}\"}}");
                        if sample_name != expect {
                            return Err(format!("expected `{expect}`, got `{sample_name}`"));
                        }
                        q[idx] = parse_secs(value)?;
                    }
                    let sum_line = lines.next().ok_or("missing summary _sum")?;
                    let (sum_name, sum_value) = split_sample(sum_line)?;
                    if sum_name != format!("{name}_sum") {
                        return Err(format!("expected `{name}_sum`, got `{sum_name}`"));
                    }
                    let count_line = lines.next().ok_or("missing summary _count")?;
                    let (count_name, count_value) = split_sample(count_line)?;
                    if count_name != format!("{name}_count") {
                        return Err(format!("expected `{name}_count`, got `{count_name}`"));
                    }
                    snap.summaries.push(SummarySnapshot {
                        name: name.to_string(),
                        count: count_value
                            .parse()
                            .map_err(|_| format!("bad count `{count_value}`"))?,
                        sum_ns: parse_secs(sum_value)?,
                        q50_ns: q[0],
                        q95_ns: q[1],
                        q99_ns: q[2],
                    });
                }
                other => return Err(format!("unknown metric type `{other}`")),
            }
        }
        Ok(snap)
    }
}

/// Nanoseconds rendered as seconds with nine decimals (lossless inverse of
/// [`parse_secs`] for values under 2^53 ns).
fn secs(ns: u64) -> String {
    format!("{}.{:09}", ns / 1_000_000_000, ns % 1_000_000_000)
}

/// Parse a seconds value back to integer nanoseconds.
fn parse_secs(s: &str) -> Result<u64, String> {
    let (whole, frac) = s
        .split_once('.')
        .ok_or_else(|| format!("bad seconds `{s}`"))?;
    if frac.len() != 9 {
        return Err(format!("expected 9 decimals in `{s}`"));
    }
    let whole: u64 = whole.parse().map_err(|_| format!("bad seconds `{s}`"))?;
    let frac: u64 = frac.parse().map_err(|_| format!("bad seconds `{s}`"))?;
    Ok(whole * 1_000_000_000 + frac)
}

/// Split `# TYPE <name> <kind>` into (name, kind).
fn parse_type_line(line: &str) -> Result<(&str, &str), String> {
    let rest = line
        .strip_prefix("# TYPE ")
        .ok_or_else(|| format!("expected `# TYPE`, got `{line}`"))?;
    rest.split_once(' ')
        .ok_or_else(|| format!("malformed TYPE line `{line}`"))
}

/// Split a sample line into (series name, value).
fn split_sample(line: &str) -> Result<(&str, &str), String> {
    line.trim()
        .rsplit_once(' ')
        .ok_or_else(|| format!("malformed sample `{line}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![
                ("bfq_queries_total".into(), 42),
                ("bfq_plan_cache_hits_total".into(), 17),
            ],
            summaries: vec![SummarySnapshot {
                name: "bfq_query_seconds".into(),
                count: 42,
                sum_ns: 1_234_567_890_123,
                q50_ns: 4_095,
                q95_ns: 65_535,
                q99_ns: 131_071,
            }],
        }
    }

    #[test]
    fn prometheus_text_round_trips() {
        let snap = sample();
        let text = snap.to_prometheus_text();
        assert!(text.contains("# TYPE bfq_queries_total counter"));
        assert!(text.contains("bfq_queries_total 42"));
        assert!(text.contains("bfq_query_seconds{quantile=\"0.95\"} 0.000065535"));
        assert!(text.contains("bfq_query_seconds_sum 1234.567890123"));
        let parsed = MetricsSnapshot::parse_prometheus_text(&text).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn parser_rejects_drift() {
        assert!(MetricsSnapshot::parse_prometheus_text("bfq_x 1").is_err());
        assert!(MetricsSnapshot::parse_prometheus_text("# TYPE x histogram\n").is_err());
        let truncated = "# TYPE x summary\nx{quantile=\"0.5\"} 0.000000001\n";
        assert!(MetricsSnapshot::parse_prometheus_text(truncated).is_err());
    }

    #[test]
    fn seconds_formatting_is_lossless() {
        for ns in [0u64, 1, 999_999_999, 1_000_000_000, 987_654_321_987] {
            assert_eq!(parse_secs(&secs(ns)).unwrap(), ns);
        }
    }
}
