//! Atomic counters, gauges, and log-bucketed latency histograms.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::phase::PhaseBreakdown;
use crate::snapshot::{MetricsSnapshot, SummarySnapshot};

/// A monotonically increasing counter (relaxed atomic).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        if n > 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge (relaxed atomic).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge starting at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if `v` is larger (high-water mark).
    #[inline]
    pub fn raise(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log buckets: bucket 0 holds exact zeros, bucket `i` holds
/// values whose bit length is `i`, i.e. `[2^(i-1), 2^i)` nanoseconds.
const BUCKETS: usize = 64;

/// A log-bucketed latency histogram over nanosecond values.
///
/// Recording is three relaxed `fetch_add`s (bucket, count, sum); quantiles
/// are resolved only when a [`HistogramSnapshot`] is taken. Buckets are
/// powers of two, so a reported quantile is the *inclusive upper bound* of
/// the bucket containing that rank — at most 2x the true value, which is
/// plenty for p50/p95/p99 dashboards and keeps the hot path branch-free.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Record one latency observation, in nanoseconds.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        let idx = (64 - ns.leading_zeros()) as usize;
        self.buckets[idx.min(BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded observations, in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the buckets (quantiles resolve from this).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count(),
            sum_ns: self.sum_ns(),
        }
    }
}

/// A point-in-time copy of a [`LatencyHistogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: [u64; BUCKETS],
    /// Number of observations at snapshot time.
    pub count: u64,
    /// Sum of observations (ns) at snapshot time.
    pub sum_ns: u64,
}

impl HistogramSnapshot {
    /// The latency (ns) at quantile `q` in `[0, 1]`: the inclusive upper
    /// bound of the log bucket containing rank `ceil(q * count)`.
    ///
    /// Monotone in `q` by construction. Returns 0 for an empty histogram.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_upper_ns(idx);
            }
        }
        bucket_upper_ns(BUCKETS - 1)
    }

    /// Summary view (p50/p95/p99 + count + sum) under the given metric name.
    pub fn summary(&self, name: &str) -> SummarySnapshot {
        SummarySnapshot {
            name: name.to_string(),
            count: self.count,
            sum_ns: self.sum_ns,
            q50_ns: self.quantile_ns(0.50),
            q95_ns: self.quantile_ns(0.95),
            q99_ns: self.quantile_ns(0.99),
        }
    }
}

/// Inclusive upper bound (ns) of log bucket `idx`.
fn bucket_upper_ns(idx: usize) -> u64 {
    if idx == 0 {
        0
    } else if idx >= 64 {
        u64::MAX
    } else {
        (1u64 << idx) - 1
    }
}

/// The engine-wide metrics registry.
///
/// One instance lives inside `Engine`; every field is individually atomic,
/// so recording from concurrent connections never takes a lock. The
/// snapshot assembled by `Engine::metrics()` adds the plan-cache counters
/// (owned by the cache itself) next to these.
#[derive(Debug, Default)]
pub struct EngineMetrics {
    /// Statements run to completion (ad-hoc and prepared).
    pub queries: Counter,
    /// Rows delivered to clients.
    pub rows_out: Counter,
    /// Chunks considered by scans.
    pub prune_chunks: Counter,
    /// Chunks skipped by any index tier before decode.
    pub prune_chunks_skipped: Counter,
    /// Rows pruned without being scanned.
    pub prune_rows: Counter,
    /// Runtime Bloom filters built (one per `BloomBuild` executed).
    pub filter_builds: Counter,
    /// Rows offered to runtime-filter probes.
    pub filter_probe_rows: Counter,
    /// Rows that survived runtime-filter probes.
    pub filter_pass_rows: Counter,
    /// Strict-mode reorder-window stalls observed.
    pub window_stalls: Counter,
    /// Per-worker scratch reallocations (steady state should be zero).
    pub filter_scratch_allocs: Counter,
    /// Candidate (probe, build) pairs emitted by join-table directory
    /// lookups, before exact key verification.
    pub join_probe_candidates: Counter,
    /// Candidate pairs that survived key verification (the gap to
    /// `join_probe_candidates` is hash-collision overhead).
    pub join_probe_verified: Counter,
    /// End-to-end statement latency.
    pub query_latency: LatencyHistogram,
    /// SQL parse phase latency.
    pub parse_latency: LatencyHistogram,
    /// Name/type binding phase latency.
    pub bind_latency: LatencyHistogram,
    /// Optimizer phase latency.
    pub optimize_latency: LatencyHistogram,
    /// Execution phase latency.
    pub execute_latency: LatencyHistogram,
}

impl EngineMetrics {
    /// A fresh registry with all counters at zero.
    pub fn new() -> EngineMetrics {
        EngineMetrics::default()
    }

    /// Record one query's phase breakdown into the latency histograms.
    pub fn record_phases(&self, phases: &PhaseBreakdown) {
        self.query_latency.record_ns(phases.total_ns);
        self.parse_latency.record_ns(phases.parse_ns);
        self.bind_latency.record_ns(phases.bind_ns);
        self.optimize_latency.record_ns(phases.optimize_ns);
        self.execute_latency.record_ns(phases.execute_ns);
    }

    /// Snapshot these metrics, prepending `extra` counters (e.g. the plan
    /// cache's hit/miss/evict counts, which live in the cache itself).
    pub fn snapshot(&self, extra: &[(&str, u64)]) -> MetricsSnapshot {
        let mut counters: Vec<(String, u64)> = Vec::with_capacity(extra.len() + 10);
        counters.push(("bfq_queries_total".into(), self.queries.get()));
        for &(name, value) in extra {
            counters.push((name.to_string(), value));
        }
        counters.push(("bfq_rows_out_total".into(), self.rows_out.get()));
        counters.push(("bfq_prune_chunks_total".into(), self.prune_chunks.get()));
        counters.push((
            "bfq_prune_chunks_skipped_total".into(),
            self.prune_chunks_skipped.get(),
        ));
        counters.push(("bfq_prune_rows_total".into(), self.prune_rows.get()));
        counters.push(("bfq_filter_builds_total".into(), self.filter_builds.get()));
        counters.push((
            "bfq_filter_probe_rows_total".into(),
            self.filter_probe_rows.get(),
        ));
        counters.push((
            "bfq_filter_pass_rows_total".into(),
            self.filter_pass_rows.get(),
        ));
        counters.push(("bfq_window_stalls_total".into(), self.window_stalls.get()));
        counters.push((
            "bfq_filter_scratch_allocs_total".into(),
            self.filter_scratch_allocs.get(),
        ));
        counters.push((
            "bfq_join_probe_candidates_total".into(),
            self.join_probe_candidates.get(),
        ));
        counters.push((
            "bfq_join_probe_verified_total".into(),
            self.join_probe_verified.get(),
        ));
        let summaries = vec![
            self.query_latency.snapshot().summary("bfq_query_seconds"),
            self.parse_latency.snapshot().summary("bfq_parse_seconds"),
            self.bind_latency.snapshot().summary("bfq_bind_seconds"),
            self.optimize_latency
                .snapshot()
                .summary("bfq_optimize_seconds"),
            self.execute_latency
                .snapshot()
                .summary("bfq_execute_seconds"),
        ];
        MetricsSnapshot {
            counters,
            summaries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        c.add(0);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        g.raise(3);
        assert_eq!(g.get(), 7);
        g.raise(11);
        assert_eq!(g.get(), 11);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.snapshot().quantile_ns(0.5), 0);
        for ns in [0u64, 1, 1, 3, 100, 1000, 1_000_000] {
            h.record_ns(ns);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.sum_ns, 1_001_105);
        // p50 lands in the bucket holding 3 (bit length 2 -> upper 3).
        assert_eq!(s.quantile_ns(0.5), 3);
        // Quantiles bound their rank's value from above, within 2x.
        assert!(s.quantile_ns(0.99) >= 1_000_000);
        assert!(s.quantile_ns(0.99) < 2_097_152);
        // q=0 still reports the smallest occupied bucket, not garbage.
        assert_eq!(s.quantile_ns(0.0), 0);
    }

    #[test]
    fn registry_snapshot_names_are_unique() {
        let m = EngineMetrics::new();
        m.queries.add(3);
        let snap = m.snapshot(&[("bfq_plan_cache_hits_total", 2)]);
        let mut names: Vec<&str> = snap
            .counters
            .iter()
            .map(|(n, _)| n.as_str())
            .chain(snap.summaries.iter().map(|s| s.name.as_str()))
            .collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
        assert_eq!(snap.counter("bfq_queries_total"), Some(3));
        assert_eq!(snap.counter("bfq_plan_cache_hits_total"), Some(2));
    }
}
