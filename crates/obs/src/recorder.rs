//! The query flight recorder: a bounded ring of per-query profiles.

use std::collections::VecDeque;

use bfq_common::Determinism;
use parking_lot::Mutex;

use crate::phase::PhaseBreakdown;

/// One completed query, as remembered by the [`FlightRecorder`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryProfile {
    /// The statement text as submitted.
    pub sql: String,
    /// FNV-1a fingerprint of the rendered optimized plan (see
    /// [`crate::fingerprint`]) — equal fingerprints mean identical plans.
    pub plan_fingerprint: u64,
    /// Wall-clock phase breakdown.
    pub phases: PhaseBreakdown,
    /// The ordering contract the query executed under.
    pub determinism: Determinism,
    /// Whether the plan came from the shared plan cache.
    pub cache_hit: bool,
    /// Rows delivered.
    pub rows_out: u64,
}

/// A bounded, thread-safe ring buffer of recent [`QueryProfile`]s.
///
/// Recording is a short critical section (push + possible pop) on a
/// `parking_lot` mutex — queries record once at completion, never on the
/// morsel hot path, so contention is bounded by query throughput.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    ring: Mutex<VecDeque<QueryProfile>>,
}

impl FlightRecorder {
    /// A recorder remembering at most `capacity` queries (min 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            capacity,
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// The fixed ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of profiles currently held (`<= capacity()`).
    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    /// True when no query has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.ring.lock().is_empty()
    }

    /// Record a completed query, evicting the oldest at capacity.
    pub fn record(&self, profile: QueryProfile) {
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(profile);
    }

    /// The recorded profiles, most recent first.
    pub fn recent(&self) -> Vec<QueryProfile> {
        let ring = self.ring.lock();
        ring.iter().rev().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(n: u64) -> QueryProfile {
        QueryProfile {
            sql: format!("select {n}"),
            plan_fingerprint: n,
            phases: PhaseBreakdown::default(),
            determinism: Determinism::Strict,
            cache_hit: n.is_multiple_of(2),
            rows_out: n,
        }
    }

    #[test]
    fn ring_is_bounded_and_newest_first() {
        let rec = FlightRecorder::new(3);
        assert!(rec.is_empty());
        for n in 0..7 {
            rec.record(profile(n));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.capacity(), 3);
        let recent = rec.recent();
        let fps: Vec<u64> = recent.iter().map(|p| p.plan_fingerprint).collect();
        assert_eq!(fps, vec![6, 5, 4]);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let rec = FlightRecorder::new(0);
        rec.record(profile(1));
        rec.record(profile(2));
        assert_eq!(rec.len(), 1);
        assert_eq!(rec.recent()[0].plan_fingerprint, 2);
    }
}
