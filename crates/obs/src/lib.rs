//! Observability core for the bfq engine.
//!
//! Everything here is allocation-light and lock-free on the hot path:
//!
//! * [`Counter`] / [`Gauge`] — single relaxed atomics.
//! * [`LatencyHistogram`] — 64 log-bucketed (power-of-two nanosecond)
//!   atomic buckets plus count and sum, so recording a latency is three
//!   relaxed `fetch_add`s and quantiles (p50/p95/p99) are computed only at
//!   snapshot time.
//! * [`SpanTimer`] / [`PhaseBreakdown`] — wall-clock spans for the
//!   parse / bind / optimize / execute phases of a query.
//! * [`MetricsSnapshot`] — a point-in-time copy of an engine's counters and
//!   summaries with a Prometheus text-exposition renderer
//!   ([`MetricsSnapshot::to_prometheus_text`]) and the matching parser
//!   ([`MetricsSnapshot::parse_prometheus_text`]) so snapshots round-trip.
//! * [`FlightRecorder`] — a bounded ring of per-query [`QueryProfile`]s
//!   (sql, plan fingerprint, phase breakdown, determinism, cache outcome).
//!
//! The design contract mirrors the executor's `MorselScratch` pattern: all
//! per-morsel recording happens in per-worker scratch buffers owned by the
//! executor and is merged into shared state once at pipeline seal, so the
//! steady-state overhead of instrumentation stays near zero.

mod metrics;
mod phase;
mod recorder;
mod snapshot;

pub use metrics::{Counter, EngineMetrics, Gauge, HistogramSnapshot, LatencyHistogram};
pub use phase::{PhaseBreakdown, SpanTimer};
pub use recorder::{FlightRecorder, QueryProfile};
pub use snapshot::{MetricsSnapshot, SummarySnapshot};

/// FNV-1a fingerprint of a rendered plan (or any other text).
///
/// Used as the `plan_fingerprint` in [`QueryProfile`]: two queries share a
/// fingerprint exactly when their optimized plans render identically.
pub fn fingerprint(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        assert_eq!(fingerprint("Scan l"), fingerprint("Scan l"));
        assert_ne!(fingerprint("Scan l"), fingerprint("Scan o"));
        assert_ne!(fingerprint(""), fingerprint(" "));
    }
}
