//! Wall-clock phase spans: parse / bind / optimize / execute.

use std::time::Instant;

/// A started wall-clock span (thin wrapper over [`Instant`]).
#[derive(Debug, Clone, Copy)]
pub struct SpanTimer(Instant);

impl SpanTimer {
    /// Start a span now.
    pub fn start() -> SpanTimer {
        SpanTimer(Instant::now())
    }

    /// Nanoseconds elapsed since the span started (saturating at `u64`).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

impl Default for SpanTimer {
    fn default() -> SpanTimer {
        SpanTimer::start()
    }
}

/// Per-query wall-clock phase breakdown, in nanoseconds.
///
/// The phases nest inside `total_ns` (they are spans of the same wall
/// clock), so `phase_sum_ns() <= total_ns` up to scheduler jitter; the
/// remainder is cache lookup, result assembly, and recording overhead. On
/// a plan-cache hit the parse/bind/optimize spans are zero — the cached
/// plan skips those phases entirely.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// SQL text to AST.
    pub parse_ns: u64,
    /// AST to bound logical plan.
    pub bind_ns: u64,
    /// Bottom-up optimization (join order + Bloom placement).
    pub optimize_ns: u64,
    /// Plan execution (including result gather).
    pub execute_ns: u64,
    /// End-to-end statement wall time.
    pub total_ns: u64,
}

impl PhaseBreakdown {
    /// Parse + bind + optimize: everything before execution.
    pub fn planning_ns(&self) -> u64 {
        self.parse_ns + self.bind_ns + self.optimize_ns
    }

    /// Sum of the four phase spans (excludes un-attributed overhead).
    pub fn phase_sum_ns(&self) -> u64 {
        self.planning_ns() + self.execute_ns
    }

    /// Render as a compact human-readable line, e.g.
    /// `parse 0.01ms · bind 0.02ms · optimize 0.40ms · execute 3.10ms · total 3.60ms`.
    pub fn render(&self) -> String {
        let ms = |ns: u64| ns as f64 / 1e6;
        format!(
            "parse {:.2}ms · bind {:.2}ms · optimize {:.2}ms · execute {:.2}ms · total {:.2}ms",
            ms(self.parse_ns),
            ms(self.bind_ns),
            ms(self.optimize_ns),
            ms(self.execute_ns),
            ms(self.total_ns)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_and_sums() {
        let t = SpanTimer::start();
        let phases = PhaseBreakdown {
            parse_ns: 10,
            bind_ns: 20,
            optimize_ns: 30,
            execute_ns: 40,
            total_ns: 110,
        };
        assert_eq!(phases.planning_ns(), 60);
        assert_eq!(phases.phase_sum_ns(), 100);
        assert!(phases.phase_sum_ns() <= phases.total_ns);
        assert!(phases.render().contains("execute 0.00ms"));
        // Timers are monotone.
        let a = t.elapsed_ns();
        let b = t.elapsed_ns();
        assert!(b >= a);
    }
}
