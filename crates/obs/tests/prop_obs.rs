//! Property tests for the metrics core: histogram quantile monotonicity,
//! count/sum bookkeeping, and Prometheus snapshot round-trips under
//! arbitrary inputs.

use bfq_obs::{LatencyHistogram, MetricsSnapshot, SummarySnapshot};
use proptest::prelude::*;

proptest! {
    /// Quantiles are monotone in `q` and bracket the observed range: every
    /// reported quantile is >= the smallest observation's bucket floor and
    /// bounds its rank's true value from above by at most 2x.
    #[test]
    fn quantiles_are_monotone(
        values in proptest::collection::vec(0u64..2_000_000_000, 1..300),
    ) {
        let h = LatencyHistogram::new();
        let mut sum = 0u64;
        for &v in &values {
            h.record_ns(v);
            sum += v;
        }
        let s = h.snapshot();
        prop_assert_eq!(s.count, values.len() as u64);
        prop_assert_eq!(s.sum_ns, sum);
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0];
        let mut prev = 0u64;
        for (i, &q) in qs.iter().enumerate() {
            let v = s.quantile_ns(q);
            if i > 0 {
                prop_assert!(v >= prev, "quantile not monotone at q={}", q);
            }
            prev = v;
        }
        // The max quantile's bucket upper bound covers the true maximum.
        let max = *values.iter().max().unwrap();
        prop_assert!(s.quantile_ns(1.0) >= max);
        prop_assert!(s.quantile_ns(1.0) <= max.next_power_of_two().max(1) * 2);
    }

    /// Snapshots survive a Prometheus render/parse round trip exactly, for
    /// arbitrary counter values and summary contents.
    #[test]
    fn prometheus_round_trip(
        counters in proptest::collection::vec(any::<u64>(), 1..6),
        quant in proptest::collection::vec(0u64..1_000_000_000_000, 3),
        count in 0u64..1_000_000,
    ) {
        let mut q = quant.clone();
        q.sort_unstable();
        let snap = MetricsSnapshot {
            counters: counters
                .iter()
                .enumerate()
                .map(|(i, &v)| (format!("bfq_prop_counter_{i}_total"), v))
                .collect(),
            summaries: vec![SummarySnapshot {
                name: "bfq_prop_seconds".to_string(),
                count,
                sum_ns: q.iter().sum(),
                q50_ns: q[0],
                q95_ns: q[1],
                q99_ns: q[2],
            }],
        };
        let text = snap.to_prometheus_text();
        let parsed = MetricsSnapshot::parse_prometheus_text(&text).unwrap();
        prop_assert_eq!(parsed, snap);
    }
}
