//! Strongly-typed identifiers.
//!
//! Using newtypes instead of bare `usize`/`u32` prevents the classic bug class
//! of passing a column ordinal where a table id was expected. All ids are
//! small and `Copy`.

use std::fmt;

/// Identifies a table registered in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Identifies a column by `(table, ordinal)`.
///
/// A `ColumnId` is stable across plans: it names the column in base-table
/// terms rather than by output position, which is what Bloom-filter planning
/// needs (a filter's build/apply columns are base-table columns regardless of
/// where they surface in intermediate plans).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnId {
    /// The owning table.
    pub table: TableId,
    /// Zero-based ordinal within the owning table's schema.
    pub index: u32,
}

impl ColumnId {
    /// Construct a column id.
    pub fn new(table: TableId, index: u32) -> Self {
        ColumnId { table, index }
    }
}

impl fmt::Display for ColumnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.c{}", self.table, self.index)
    }
}

/// Identifies one planned runtime Bloom filter.
///
/// A `FilterId` links the hash join that *builds* a filter to the scan that
/// *applies* it; the executor's filter hub is keyed by this id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FilterId(pub u32);

impl fmt::Display for FilterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bf{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(TableId(3).to_string(), "t3");
        assert_eq!(ColumnId::new(TableId(3), 7).to_string(), "t3.c7");
        assert_eq!(FilterId(9).to_string(), "bf9");
    }

    #[test]
    fn column_id_equality_and_ordering() {
        let a = ColumnId::new(TableId(1), 0);
        let b = ColumnId::new(TableId(1), 1);
        let c = ColumnId::new(TableId(2), 0);
        assert!(a < b && b < c);
        assert_eq!(a, ColumnId::new(TableId(1), 0));
    }
}
