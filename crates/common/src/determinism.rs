//! The `determinism` execution knob.
//!
//! [`Determinism`] selects how much ordering the morsel pipeline's sinks
//! and exchanges must preserve. Both modes are deterministic — running the
//! same query twice at the same degree of parallelism yields bitwise
//! identical results — the knob only chooses *which* deterministic order:
//!
//! * [`Determinism::Strict`] (the default): sinks consume morsel outputs
//!   in the eager executor's sequence order, so results are bit-identical
//!   to the eager oracle — including float accumulation order. This is the
//!   correctness baseline every other mode is tested against.
//! * [`Determinism::Fast`]: morsels are assigned to workers round-robin
//!   and each worker folds a private partial state (aggregate hash table,
//!   sorted runs, repartition buckets) merged at seal in worker-index
//!   order. Row *sets* equal strict mode exactly; row order — and float
//!   accumulation order — may differ wherever the query does not impose a
//!   total ORDER BY.

use std::fmt;
use std::str::FromStr;

use crate::error::BfqError;

/// How much ordering the pipeline's sinks and exchanges preserve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Determinism {
    /// Bit-identical to the eager executor (sequence-ordered sinks).
    #[default]
    Strict,
    /// Per-worker partial states merged at seal: same row set, stable
    /// run-to-run order at fixed DOP, but not the eager executor's order.
    Fast,
}

impl Determinism {
    /// Canonical knob spelling, as accepted by `SET determinism`.
    pub fn label(self) -> &'static str {
        match self {
            Determinism::Strict => "strict",
            Determinism::Fast => "fast",
        }
    }
}

impl fmt::Display for Determinism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for Determinism {
    type Err = BfqError;

    fn from_str(s: &str) -> Result<Self, BfqError> {
        match s.to_ascii_lowercase().as_str() {
            "strict" => Ok(Determinism::Strict),
            "fast" => Ok(Determinism::Fast),
            other => Err(BfqError::invalid(format!(
                "unknown determinism `{other}` (strict|fast)"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        for mode in [Determinism::Strict, Determinism::Fast] {
            assert_eq!(mode.label().parse::<Determinism>().unwrap(), mode);
            assert_eq!(mode.to_string(), mode.label());
        }
        assert_eq!("FAST".parse::<Determinism>().unwrap(), Determinism::Fast);
        assert!("loose".parse::<Determinism>().is_err());
        assert_eq!(Determinism::default(), Determinism::Strict);
    }
}
