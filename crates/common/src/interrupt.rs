//! Query interruption: cooperative cancellation and statement timeouts.
//!
//! A [`CancelToken`] is the one-way trigger a running query polls at cheap,
//! chunk-granular points (the executor checks it at every morsel claim and
//! at every streamed pull). It fires for one of two reasons: an explicit
//! client [`CancelToken::cancel`], or a statement deadline set at execution
//! start ([`CancelToken::with_timeout_ms`]) that the poll discovers lazily —
//! no timer thread exists anywhere.
//!
//! A [`CancelHub`] is the per-session rendezvous a *server* uses to reach
//! the query a session is currently running: execution arms the hub with
//! the fresh token, completion disarms it, and an out-of-band
//! [`CancelHub::cancel`] (from another connection, PostgreSQL-style) fires
//! whatever token is armed at that moment — a no-op between queries, so a
//! late cancel can never kill the *next* statement.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::error::{BfqError, Result};

/// Why a token fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// An explicit client/server cancel request.
    Cancelled,
    /// The statement deadline passed.
    Timeout,
}

const STATE_LIVE: u8 = 0;
const STATE_CANCELLED: u8 = 1;
const STATE_TIMED_OUT: u8 = 2;

/// A one-way interruption flag for a single query execution, with an
/// optional deadline. Cheap to poll (one relaxed atomic load; one clock
/// read only while a deadline is set and the token has not fired yet).
#[derive(Debug)]
pub struct CancelToken {
    state: AtomicU8,
    /// Deadline for the statement, if a timeout was configured.
    deadline: Option<Instant>,
    /// The configured timeout (for the error message).
    timeout_ms: u64,
}

impl CancelToken {
    /// A token that only fires on explicit [`CancelToken::cancel`].
    pub fn unbounded() -> Arc<CancelToken> {
        Arc::new(CancelToken {
            state: AtomicU8::new(STATE_LIVE),
            deadline: None,
            timeout_ms: 0,
        })
    }

    /// A token that additionally fires once `timeout_ms` milliseconds have
    /// elapsed from now. `0` disables the deadline (same as
    /// [`CancelToken::unbounded`]).
    pub fn with_timeout_ms(timeout_ms: u64) -> Arc<CancelToken> {
        Arc::new(CancelToken {
            state: AtomicU8::new(STATE_LIVE),
            deadline: (timeout_ms > 0).then(|| Instant::now() + Duration::from_millis(timeout_ms)),
            timeout_ms,
        })
    }

    /// Fire the token with [`CancelReason::Cancelled`]. Idempotent; a token
    /// that already timed out keeps its timeout reason.
    pub fn cancel(&self) {
        let _ = self.state.compare_exchange(
            STATE_LIVE,
            STATE_CANCELLED,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }

    /// The reason the token fired, if it has (deadline checked lazily).
    pub fn reason(&self) -> Option<CancelReason> {
        match self.state.load(Ordering::Acquire) {
            STATE_CANCELLED => Some(CancelReason::Cancelled),
            STATE_TIMED_OUT => Some(CancelReason::Timeout),
            _ => match self.deadline {
                Some(deadline) if Instant::now() >= deadline => {
                    let _ = self.state.compare_exchange(
                        STATE_LIVE,
                        STATE_TIMED_OUT,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    );
                    self.reason()
                }
                _ => None,
            },
        }
    }

    /// Poll the token: `Ok(())` while live, [`BfqError::Cancelled`] once
    /// fired (by explicit cancel or by the deadline passing).
    #[inline]
    pub fn check(&self) -> Result<()> {
        // Fast path: nothing fired and no deadline to consult.
        if self.state.load(Ordering::Acquire) == STATE_LIVE && self.deadline.is_none() {
            return Ok(());
        }
        match self.reason() {
            None => Ok(()),
            Some(CancelReason::Cancelled) => {
                Err(BfqError::Cancelled("query cancelled by client".into()))
            }
            Some(CancelReason::Timeout) => Err(BfqError::Cancelled(format!(
                "statement timeout after {}ms",
                self.timeout_ms
            ))),
        }
    }
}

/// Per-session slot for the in-flight query's [`CancelToken`].
///
/// The executing side arms the hub at statement start and disarms it at
/// completion; an out-of-band canceller fires whatever is armed. The hub
/// remembers the last fired reason across disarm so a server can count
/// cancellations vs timeouts after the error surfaces.
#[derive(Debug, Default)]
pub struct CancelHub {
    current: Mutex<Option<Arc<CancelToken>>>,
    /// Reason of the most recently disarmed token that had fired.
    last: Mutex<Option<CancelReason>>,
}

impl CancelHub {
    /// A hub with no armed query.
    pub fn new() -> Arc<CancelHub> {
        Arc::new(CancelHub::default())
    }

    /// Install `token` as the session's in-flight query.
    pub fn arm(&self, token: Arc<CancelToken>) {
        *self.current.lock().expect("cancel hub poisoned") = Some(token);
    }

    /// Remove the in-flight token (statement finished), recording its fate
    /// for [`CancelHub::last_fired`].
    pub fn disarm(&self) {
        let token = self.current.lock().expect("cancel hub poisoned").take();
        if let Some(reason) = token.and_then(|t| t.reason()) {
            *self.last.lock().expect("cancel hub poisoned") = Some(reason);
        }
    }

    /// Fire the in-flight query's token, if one is armed. Returns whether a
    /// query was actually interrupted — `false` means the session was idle
    /// and the cancel is a no-op (it will *not* affect a later statement).
    pub fn cancel(&self) -> bool {
        match self.current.lock().expect("cancel hub poisoned").as_ref() {
            Some(token) => {
                token.cancel();
                true
            }
            None => false,
        }
    }

    /// The reason the most recently completed interrupted statement fired,
    /// clearing it. `None` when the last statement finished normally.
    pub fn last_fired(&self) -> Option<CancelReason> {
        self.last.lock().expect("cancel hub poisoned").take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_token_fires_only_on_cancel() {
        let t = CancelToken::unbounded();
        assert!(t.check().is_ok());
        assert_eq!(t.reason(), None);
        t.cancel();
        assert_eq!(t.reason(), Some(CancelReason::Cancelled));
        let err = t.check().unwrap_err();
        assert_eq!(err.kind(), "cancelled");
        // Idempotent; reason sticks.
        t.cancel();
        assert_eq!(t.reason(), Some(CancelReason::Cancelled));
    }

    #[test]
    fn deadline_fires_lazily_as_timeout() {
        let t = CancelToken::with_timeout_ms(1);
        std::thread::sleep(Duration::from_millis(5));
        let err = t.check().unwrap_err();
        assert_eq!(err.kind(), "cancelled");
        assert!(err.message().contains("timeout"), "{err}");
        assert_eq!(t.reason(), Some(CancelReason::Timeout));
        // A cancel after the timeout does not overwrite the reason.
        t.cancel();
        assert_eq!(t.reason(), Some(CancelReason::Timeout));
    }

    #[test]
    fn zero_timeout_means_off() {
        let t = CancelToken::with_timeout_ms(0);
        std::thread::sleep(Duration::from_millis(2));
        assert!(t.check().is_ok());
    }

    #[test]
    fn hub_cancels_only_armed_queries() {
        let hub = CancelHub::new();
        assert!(!hub.cancel(), "idle session: cancel is a no-op");
        let t = CancelToken::unbounded();
        hub.arm(t.clone());
        assert!(hub.cancel());
        assert!(t.check().is_err());
        hub.disarm();
        assert_eq!(hub.last_fired(), Some(CancelReason::Cancelled));
        assert_eq!(hub.last_fired(), None, "last_fired clears on read");
        // A fresh statement is unaffected by the old cancel.
        let t2 = CancelToken::unbounded();
        hub.arm(t2.clone());
        assert!(t2.check().is_ok());
        hub.disarm();
        assert_eq!(hub.last_fired(), None);
    }
}
