//! [`RelSet`]: a set of base relations within one query block.
//!
//! The optimizer numbers the base relations of a query block `0..n` and
//! represents every set of relations as a 64-bit bitset. This is the `δ`
//! ("required build-side relations") and join-relation representation from the
//! paper: cheap to copy, hash, intersect, and test for subset-ness — all
//! operations on the hot path of the two bottom-up passes.

use std::fmt;

/// A set of base-relation ordinals (0..64) encoded as a bitmask.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct RelSet(pub u64);

impl RelSet {
    /// The empty set.
    pub const EMPTY: RelSet = RelSet(0);

    /// Maximum number of relations representable per query block.
    pub const MAX_RELS: usize = 64;

    /// A set containing the single relation `i`.
    ///
    /// # Panics
    /// Panics if `i >= 64`; query blocks are limited to 64 base relations.
    pub fn single(i: usize) -> Self {
        assert!(i < Self::MAX_RELS, "relation ordinal {i} out of range");
        RelSet(1u64 << i)
    }

    /// The full set `{0, 1, .., n-1}`.
    pub fn all(n: usize) -> Self {
        assert!(n <= Self::MAX_RELS);
        if n == Self::MAX_RELS {
            RelSet(u64::MAX)
        } else {
            RelSet((1u64 << n) - 1)
        }
    }

    /// Whether this set has no members.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of member relations.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether relation `i` is a member.
    pub fn contains(self, i: usize) -> bool {
        i < Self::MAX_RELS && self.0 & (1u64 << i) != 0
    }

    /// This set plus relation `i`.
    pub fn with(self, i: usize) -> Self {
        assert!(i < Self::MAX_RELS, "relation ordinal {i} out of range");
        RelSet(self.0 | (1u64 << i))
    }

    /// This set minus relation `i`.
    pub fn without(self, i: usize) -> Self {
        RelSet(self.0 & !(1u64 << i))
    }

    /// Set union.
    pub fn union(self, other: RelSet) -> Self {
        RelSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersect(self, other: RelSet) -> Self {
        RelSet(self.0 & other.0)
    }

    /// Set difference (`self \ other`).
    pub fn difference(self, other: RelSet) -> Self {
        RelSet(self.0 & !other.0)
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset_of(self, other: RelSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Whether the two sets share no members.
    pub fn is_disjoint(self, other: RelSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Whether the two sets share at least one member.
    pub fn overlaps(self, other: RelSet) -> bool {
        !self.is_disjoint(other)
    }

    /// Iterate member ordinals in ascending order.
    pub fn iter(self) -> RelSetIter {
        RelSetIter(self.0)
    }

    /// The lowest member ordinal, if any.
    pub fn first(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros() as usize)
        }
    }

    /// Enumerate all non-empty proper subsets of `self`.
    ///
    /// This is the classic `(sub - 1) & set` trick used by DP join
    /// enumeration: it visits every subset except the empty set and `self`
    /// itself, in decreasing bitmask order.
    pub fn proper_subsets(self) -> ProperSubsets {
        let first = self.0.wrapping_sub(1) & self.0;
        ProperSubsets {
            set: self.0,
            next: first,
            done: self.0 == 0 || first == 0,
        }
    }
}

impl FromIterator<usize> for RelSet {
    /// Build a set from an iterator of ordinals.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = RelSet::EMPTY;
        for i in iter {
            s = s.with(i);
        }
        s
    }
}

impl fmt::Debug for RelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut sep = "";
        for i in self.iter() {
            write!(f, "{sep}{i}")?;
            sep = ",";
        }
        write!(f, "}}")
    }
}

impl fmt::Display for RelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Iterator over the member ordinals of a [`RelSet`].
pub struct RelSetIter(u64);

impl Iterator for RelSetIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let i = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(i)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for RelSetIter {}

/// Iterator produced by [`RelSet::proper_subsets`].
pub struct ProperSubsets {
    set: u64,
    next: u64,
    done: bool,
}

impl Iterator for ProperSubsets {
    type Item = RelSet;

    fn next(&mut self) -> Option<RelSet> {
        if self.done {
            return None;
        }
        let cur = self.next;
        self.next = self.next.wrapping_sub(1) & self.set;
        if self.next == 0 {
            self.done = true;
        }
        Some(RelSet(cur))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_membership() {
        let s = RelSet::from_iter([0, 3, 5]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(0) && s.contains(3) && s.contains(5));
        assert!(!s.contains(1) && !s.contains(63));
        assert!(!s.is_empty());
        assert!(RelSet::EMPTY.is_empty());
    }

    #[test]
    fn set_algebra() {
        let a = RelSet::from_iter([0, 1, 2]);
        let b = RelSet::from_iter([2, 3]);
        assert_eq!(a.union(b), RelSet::from_iter([0, 1, 2, 3]));
        assert_eq!(a.intersect(b), RelSet::single(2));
        assert_eq!(a.difference(b), RelSet::from_iter([0, 1]));
        assert!(RelSet::single(2).is_subset_of(a));
        assert!(!b.is_subset_of(a));
        assert!(a.overlaps(b));
        assert!(a.is_disjoint(RelSet::from_iter([4, 5])));
    }

    #[test]
    fn iteration_order_is_ascending() {
        let s = RelSet::from_iter([7, 1, 42]);
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![1, 7, 42]);
        assert_eq!(s.first(), Some(1));
        assert_eq!(RelSet::EMPTY.first(), None);
    }

    #[test]
    fn all_builds_prefix_sets() {
        assert_eq!(RelSet::all(0), RelSet::EMPTY);
        assert_eq!(RelSet::all(3), RelSet::from_iter([0, 1, 2]));
        assert_eq!(RelSet::all(64).len(), 64);
    }

    #[test]
    fn proper_subsets_enumerates_everything_once() {
        let s = RelSet::from_iter([1, 4, 9]);
        let subs: Vec<_> = s.proper_subsets().collect();
        // 2^3 - 2 = 6 proper non-empty subsets.
        assert_eq!(subs.len(), 6);
        for sub in &subs {
            assert!(!sub.is_empty());
            assert!(sub.is_subset_of(s));
            assert_ne!(*sub, s);
        }
        let mut uniq = subs.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), subs.len());
    }

    #[test]
    fn proper_subsets_of_singleton_is_empty() {
        assert_eq!(RelSet::single(5).proper_subsets().count(), 0);
        assert_eq!(RelSet::EMPTY.proper_subsets().count(), 0);
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", RelSet::from_iter([0, 2])), "{0,2}");
        assert_eq!(format!("{:?}", RelSet::EMPTY), "{}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn single_panics_out_of_range() {
        let _ = RelSet::single(64);
    }
}
