//! Seedable 64-bit hashing used by hash joins, repartitioning and Bloom
//! filters.
//!
//! The engine needs (a) a fast, high-quality mixer for integer keys and
//! (b) a byte-string hash, both parameterizable by seed so that the Bloom
//! filter's two hash functions (paper §3.5 fixes k = 2 "for performance
//! reasons") and the executor's partitioning hash are pairwise independent.
//! We use the `splitmix64`/`murmur3` finalizer family — public-domain
//! constructions with well-studied avalanche behaviour.

/// Mix a 64-bit value with a seed (splitmix64 finalizer over `v ^ seed`).
#[inline]
pub fn hash_u64(v: u64, seed: u64) -> u64 {
    let mut z = v ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash a signed integer (two's-complement reinterpretation).
#[inline]
pub fn hash_i64(v: i64, seed: u64) -> u64 {
    hash_u64(v as u64, seed)
}

/// Hash an f64 by its bit pattern, canonicalizing -0.0 to +0.0 so that
/// SQL-equal floats hash equal.
#[inline]
pub fn hash_f64(v: f64, seed: u64) -> u64 {
    let canonical = if v == 0.0 { 0.0f64 } else { v };
    hash_u64(canonical.to_bits(), seed)
}

/// Hash a byte string (FNV-1a accumulate, then splitmix finalize).
#[inline]
pub fn hash_bytes(bytes: &[u8], seed: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    hash_u64(h, seed)
}

/// Combine two hashes (for multi-column keys), order-sensitive.
#[inline]
pub fn combine(a: u64, b: u64) -> u64 {
    // boost::hash_combine-style, widened to 64 bits.
    a ^ (b
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(a << 6)
        .wrapping_add(a >> 2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        assert_eq!(hash_u64(42, 1), hash_u64(42, 1));
        assert_ne!(hash_u64(42, 1), hash_u64(42, 2));
        assert_ne!(hash_u64(42, 1), hash_u64(43, 1));
    }

    #[test]
    fn bytes_hash_differs_by_content_and_seed() {
        assert_eq!(hash_bytes(b"abc", 7), hash_bytes(b"abc", 7));
        assert_ne!(hash_bytes(b"abc", 7), hash_bytes(b"abd", 7));
        assert_ne!(hash_bytes(b"abc", 7), hash_bytes(b"abc", 8));
        // Prefix-freedom sanity: "" vs "\0".
        assert_ne!(hash_bytes(b"", 7), hash_bytes(b"\0", 7));
    }

    #[test]
    fn float_zero_canonicalization() {
        assert_eq!(hash_f64(0.0, 3), hash_f64(-0.0, 3));
        assert_ne!(hash_f64(1.0, 3), hash_f64(2.0, 3));
    }

    #[test]
    fn avalanche_smoke() {
        // Flipping one input bit should flip roughly half the output bits.
        let h1 = hash_u64(0x1234_5678, 0);
        let h2 = hash_u64(0x1234_5679, 0);
        let flipped = (h1 ^ h2).count_ones();
        assert!(
            (16..=48).contains(&flipped),
            "poor avalanche: {flipped} bits"
        );
    }

    #[test]
    fn combine_is_order_sensitive() {
        assert_ne!(combine(1, 2), combine(2, 1));
        assert_eq!(combine(1, 2), combine(1, 2));
    }
}
