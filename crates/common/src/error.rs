//! Error handling shared by every `bfq` crate.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T, E = BfqError> = std::result::Result<T, E>;

/// The error type for all fallible `bfq` operations.
///
/// Variants are coarse on purpose: each carries a human-readable message with
/// enough context to diagnose the failure, and the variant itself tells the
/// caller which subsystem rejected the request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BfqError {
    /// A SQL string failed to lex or parse. Carries position information.
    Parse(String),
    /// Name resolution or type checking failed while binding a query.
    Bind(String),
    /// The catalog does not contain a requested object.
    Catalog(String),
    /// The optimizer could not produce a plan (e.g. unsupported shape).
    Plan(String),
    /// A runtime failure while executing a physical plan.
    Execution(String),
    /// A type mismatch detected at evaluation time.
    Type(String),
    /// Invalid configuration or argument supplied by the caller.
    Invalid(String),
    /// Execution was interrupted: explicit client cancel or statement timeout.
    Cancelled(String),
    /// An internal invariant was violated; indicates a bug in `bfq` itself.
    Internal(String),
}

impl BfqError {
    /// Build a [`BfqError::Internal`] from anything displayable.
    pub fn internal(msg: impl fmt::Display) -> Self {
        BfqError::Internal(msg.to_string())
    }

    /// Build a [`BfqError::Invalid`] from anything displayable.
    pub fn invalid(msg: impl fmt::Display) -> Self {
        BfqError::Invalid(msg.to_string())
    }

    /// The subsystem label used in the `Display` output.
    pub fn kind(&self) -> &'static str {
        match self {
            BfqError::Parse(_) => "parse",
            BfqError::Bind(_) => "bind",
            BfqError::Catalog(_) => "catalog",
            BfqError::Plan(_) => "plan",
            BfqError::Execution(_) => "execution",
            BfqError::Type(_) => "type",
            BfqError::Invalid(_) => "invalid",
            BfqError::Cancelled(_) => "cancelled",
            BfqError::Internal(_) => "internal",
        }
    }

    /// The message payload, independent of the variant.
    pub fn message(&self) -> &str {
        match self {
            BfqError::Parse(m)
            | BfqError::Bind(m)
            | BfqError::Catalog(m)
            | BfqError::Plan(m)
            | BfqError::Execution(m)
            | BfqError::Type(m)
            | BfqError::Invalid(m)
            | BfqError::Cancelled(m)
            | BfqError::Internal(m) => m,
        }
    }
}

impl fmt::Display for BfqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error: {}", self.kind(), self.message())
    }
}

impl std::error::Error for BfqError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_message() {
        let e = BfqError::Catalog("no such table `t`".into());
        assert_eq!(e.to_string(), "catalog error: no such table `t`");
        assert_eq!(e.kind(), "catalog");
        assert_eq!(e.message(), "no such table `t`");
    }

    #[test]
    fn helpers_build_expected_variants() {
        assert!(matches!(BfqError::internal("x"), BfqError::Internal(_)));
        assert!(matches!(BfqError::invalid("x"), BfqError::Invalid(_)));
    }

    #[test]
    fn all_variants_report_kind() {
        let variants = [
            BfqError::Parse("m".into()),
            BfqError::Bind("m".into()),
            BfqError::Catalog("m".into()),
            BfqError::Plan("m".into()),
            BfqError::Execution("m".into()),
            BfqError::Type("m".into()),
            BfqError::Invalid("m".into()),
            BfqError::Cancelled("m".into()),
            BfqError::Internal("m".into()),
        ];
        let kinds: Vec<_> = variants.iter().map(|v| v.kind()).collect();
        assert_eq!(
            kinds,
            [
                "parse",
                "bind",
                "catalog",
                "plan",
                "execution",
                "type",
                "invalid",
                "cancelled",
                "internal"
            ]
        );
    }
}
