//! Shared foundation types for the `bfq` engine.
//!
//! This crate deliberately has no dependencies on the rest of the workspace so
//! every other crate can use its types: scalar [`Datum`]s and [`DataType`]s,
//! calendar [`date`] helpers, the [`RelSet`] bitset used by the optimizer to
//! identify sets of base relations, typed [`ids`], and the shared
//! [`error::BfqError`] type.

pub mod date;
pub mod determinism;
pub mod error;
pub mod hash;
pub mod ids;
pub mod interrupt;
pub mod relset;
pub mod value;

pub use determinism::Determinism;
pub use error::{BfqError, Result};
pub use ids::{ColumnId, FilterId, TableId};
pub use interrupt::{CancelHub, CancelReason, CancelToken};
pub use relset::RelSet;
pub use value::{DataType, Datum};
