//! Proleptic-Gregorian calendar arithmetic on `days since 1970-01-01`.
//!
//! TPC-H is date-heavy (shipdate ranges, interval arithmetic, `EXTRACT(YEAR)`)
//! so the engine needs exact calendar conversion. The algorithms are Howard
//! Hinnant's well-known `days_from_civil` / `civil_from_days`, valid for the
//! full `i32` day range.

/// Convert a civil date to days since the Unix epoch.
///
/// Months are 1-12 and days 1-31; out-of-range inputs wrap per the algorithm
/// (callers should validate first via [`is_valid_date`] when input is
/// untrusted).
pub fn to_days(year: i32, month: u32, day: u32) -> i32 {
    let y = if month <= 2 { year - 1 } else { year } as i64;
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (month as i64 + 9) % 12; // [0, 11], March = 0
    let doy = (153 * mp + 2) / 5 + day as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    (era * 146097 + doe - 719468) as i32
}

/// Convert days since the Unix epoch back to `(year, month, day)`.
pub fn from_days(days: i32) -> (i32, u32, u32) {
    let z = days as i64 + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    let year = if m <= 2 { y + 1 } else { y } as i32;
    (year, m, d)
}

/// Whether `(year, month, day)` denotes a real calendar date.
pub fn is_valid_date(year: i32, month: u32, day: u32) -> bool {
    if !(1..=12).contains(&month) || day == 0 {
        return false;
    }
    day <= days_in_month(year, month)
}

/// Number of days in the given month.
pub fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Gregorian leap-year rule.
pub fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Extract the year of an epoch-day value (what SQL `EXTRACT(YEAR ...)` does).
pub fn year_of(days: i32) -> i32 {
    from_days(days).0
}

/// Extract the month (1-12) of an epoch-day value.
pub fn month_of(days: i32) -> u32 {
    from_days(days).1
}

/// Add whole months, clamping the day-of-month (SQL `date + INTERVAL 'n' MONTH`).
///
/// `1996-01-31 + 1 month = 1996-02-29` — the day clamps to the end of the
/// target month, matching PostgreSQL semantics.
pub fn add_months(days: i32, months: i32) -> i32 {
    let (y, m, d) = from_days(days);
    let total = y as i64 * 12 + (m as i64 - 1) + months as i64;
    let ny = total.div_euclid(12) as i32;
    let nm = (total.rem_euclid(12) + 1) as u32;
    let nd = d.min(days_in_month(ny, nm));
    to_days(ny, nm, nd)
}

/// Add whole years (SQL `date + INTERVAL 'n' YEAR`).
pub fn add_years(days: i32, years: i32) -> i32 {
    add_months(days, years * 12)
}

/// Parse a `YYYY-MM-DD` literal into epoch days.
pub fn parse_date(s: &str) -> Option<i32> {
    let mut parts = s.split('-');
    let y: i32 = parts.next()?.parse().ok()?;
    let m: u32 = parts.next()?.parse().ok()?;
    let d: u32 = parts.next()?.parse().ok()?;
    if parts.next().is_some() || !is_valid_date(y, m, d) {
        return None;
    }
    Some(to_days(y, m, d))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(to_days(1970, 1, 1), 0);
        assert_eq!(from_days(0), (1970, 1, 1));
    }

    #[test]
    fn known_dates_round_trip() {
        // TPC-H boundary dates.
        for (y, m, d) in [
            (1992, 1, 1),
            (1995, 3, 15),
            (1996, 12, 31),
            (1998, 12, 1),
            (1998, 8, 2),
            (2000, 2, 29),
            (1900, 3, 1),
        ] {
            let days = to_days(y, m, d);
            assert_eq!(from_days(days), (y, m, d), "round trip {y}-{m}-{d}");
        }
    }

    #[test]
    fn consecutive_days_are_consecutive() {
        let mut prev = to_days(1992, 1, 1);
        let mut date = (1992, 1, 1);
        for _ in 0..1000 {
            let (y, m, d) = date;
            date = if d < days_in_month(y, m) {
                (y, m, d + 1)
            } else if m < 12 {
                (y, m + 1, 1)
            } else {
                (y + 1, 1, 1)
            };
            let next = to_days(date.0, date.1, date.2);
            assert_eq!(next, prev + 1);
            prev = next;
        }
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(is_leap_year(1996));
        assert!(!is_leap_year(1997));
        assert_eq!(days_in_month(2000, 2), 29);
        assert_eq!(days_in_month(1900, 2), 28);
    }

    #[test]
    fn month_arithmetic_clamps() {
        let jan31 = to_days(1996, 1, 31);
        assert_eq!(from_days(add_months(jan31, 1)), (1996, 2, 29));
        let d = to_days(1995, 1, 1);
        assert_eq!(from_days(add_months(d, 12)), (1996, 1, 1));
        assert_eq!(from_days(add_years(d, 1)), (1996, 1, 1));
        assert_eq!(from_days(add_months(d, -1)), (1994, 12, 1));
    }

    #[test]
    fn parse_and_extract() {
        let d = parse_date("1995-03-15").unwrap();
        assert_eq!(from_days(d), (1995, 3, 15));
        assert_eq!(year_of(d), 1995);
        assert_eq!(month_of(d), 3);
        assert!(parse_date("1995-13-01").is_none());
        assert!(parse_date("1995-02-30").is_none());
        assert!(parse_date("garbage").is_none());
        assert!(parse_date("1995-03-15-16").is_none());
    }
}
