//! Scalar values ([`Datum`]) and their types ([`DataType`]).
//!
//! The engine is columnar; `Datum` is used only at the "edges": literals in
//! expressions, query results handed to users, statistics boundaries
//! (min/max), and test fixtures. Bulk data lives in `bfq-storage` columns.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// The type of a column or scalar expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer. Also used for keys.
    Int64,
    /// 64-bit IEEE float. Used for prices, discounts, aggregates.
    Float64,
    /// UTF-8 string (dictionary-encoded in storage).
    Utf8,
    /// Boolean.
    Bool,
    /// Calendar date stored as days since 1970-01-01 (may be negative).
    Date,
}

impl DataType {
    /// Whether the type is numeric (participates in arithmetic).
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int64 | DataType::Float64)
    }

    /// Whether two types can be compared with `=`, `<`, etc.
    ///
    /// Numeric types are mutually comparable; other types compare only with
    /// themselves. `Date` compares with `Date` and `Int64` (its storage type),
    /// which keeps date arithmetic simple.
    pub fn comparable_with(self, other: DataType) -> bool {
        if self == other {
            return true;
        }
        match (self, other) {
            (a, b) if a.is_numeric() && b.is_numeric() => true,
            (DataType::Date, DataType::Int64) | (DataType::Int64, DataType::Date) => true,
            _ => false,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int64 => "INT64",
            DataType::Float64 => "FLOAT64",
            DataType::Utf8 => "UTF8",
            DataType::Bool => "BOOL",
            DataType::Date => "DATE",
        };
        f.write_str(s)
    }
}

/// A single scalar value.
#[derive(Debug, Clone)]
pub enum Datum {
    /// SQL NULL (typeless here; the binder tracks the intended type).
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Shared string payload; cloning is cheap.
    Str(Arc<str>),
    /// Boolean.
    Bool(bool),
    /// Days since the Unix epoch.
    Date(i32),
}

impl Datum {
    /// Convenience constructor for string datums.
    pub fn str(s: impl Into<Arc<str>>) -> Self {
        Datum::Str(s.into())
    }

    /// The runtime type, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Datum::Null => None,
            Datum::Int(_) => Some(DataType::Int64),
            Datum::Float(_) => Some(DataType::Float64),
            Datum::Str(_) => Some(DataType::Utf8),
            Datum::Bool(_) => Some(DataType::Bool),
            Datum::Date(_) => Some(DataType::Date),
        }
    }

    /// Whether this is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Datum::Null)
    }

    /// Numeric view used by the estimator: ints, floats and dates map onto a
    /// common `f64` axis so min/max statistics can bound range predicates.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Datum::Int(v) => Some(*v as f64),
            Datum::Float(v) => Some(*v),
            Datum::Date(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Integer view (ints and dates).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Datum::Int(v) => Some(*v),
            Datum::Date(v) => Some(*v as i64),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Datum::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Datum::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// SQL comparison semantics: NULL compares as unknown (`None`); numeric
    /// types compare on the `f64` axis; strings lexicographically.
    pub fn sql_cmp(&self, other: &Datum) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        match (self, other) {
            (Datum::Str(a), Datum::Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            (Datum::Bool(a), Datum::Bool(b)) => Some(a.cmp(b)),
            _ => {
                let (a, b) = (self.as_f64()?, other.as_f64()?);
                a.partial_cmp(&b)
            }
        }
    }
}

/// Structural equality: NULL == NULL here (useful for tests/maps). SQL
/// three-valued logic is implemented by `sql_cmp` / the expression evaluator,
/// not by this impl.
impl PartialEq for Datum {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Datum::Null, Datum::Null) => true,
            (Datum::Int(a), Datum::Int(b)) => a == b,
            (Datum::Float(a), Datum::Float(b)) => a == b || (a.is_nan() && b.is_nan()),
            (Datum::Str(a), Datum::Str(b)) => a == b,
            (Datum::Bool(a), Datum::Bool(b)) => a == b,
            (Datum::Date(a), Datum::Date(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Datum {}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Null => f.write_str("NULL"),
            Datum::Int(v) => write!(f, "{v}"),
            Datum::Float(v) => write!(f, "{v}"),
            Datum::Str(s) => write!(f, "'{s}'"),
            Datum::Bool(b) => write!(f, "{b}"),
            Datum::Date(d) => {
                let (y, m, dd) = crate::date::from_days(*d);
                write!(f, "{y:04}-{m:02}-{dd:02}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn types_and_views() {
        assert_eq!(Datum::Int(5).data_type(), Some(DataType::Int64));
        assert_eq!(Datum::Null.data_type(), None);
        assert_eq!(Datum::Int(5).as_f64(), Some(5.0));
        assert_eq!(Datum::Date(10).as_i64(), Some(10));
        assert_eq!(Datum::str("x").as_str(), Some("x"));
        assert_eq!(Datum::Bool(true).as_bool(), Some(true));
        assert_eq!(Datum::str("x").as_f64(), None);
    }

    #[test]
    fn sql_cmp_follows_three_valued_logic() {
        assert_eq!(Datum::Null.sql_cmp(&Datum::Int(1)), None);
        assert_eq!(
            Datum::Int(1).sql_cmp(&Datum::Float(1.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Datum::str("abc").sql_cmp(&Datum::str("abd")),
            Some(Ordering::Less)
        );
        assert_eq!(
            Datum::Date(100).sql_cmp(&Datum::Int(100)),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn display_formats_dates_iso() {
        assert_eq!(Datum::Date(0).to_string(), "1970-01-01");
        assert_eq!(Datum::str("hi").to_string(), "'hi'");
    }

    #[test]
    fn comparable_with_matrix() {
        assert!(DataType::Int64.comparable_with(DataType::Float64));
        assert!(DataType::Date.comparable_with(DataType::Int64));
        assert!(!DataType::Utf8.comparable_with(DataType::Int64));
        assert!(DataType::Utf8.comparable_with(DataType::Utf8));
    }

    #[test]
    fn eq_treats_nan_as_equal_for_test_use() {
        assert_eq!(Datum::Float(f64::NAN), Datum::Float(f64::NAN));
        assert_eq!(Datum::Null, Datum::Null);
        assert_ne!(Datum::Null, Datum::Int(0));
    }
}
