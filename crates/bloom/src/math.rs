//! Sizing and false-positive math shared by the runtime and the cost model.

use std::str::FromStr;

/// Number of hash functions; the paper fixes this at two (§3.5).
pub const NUM_HASHES: u32 = 2;

/// Bits per cache-line block in the blocked layout (64 bytes — one line).
pub const BLOCK_BITS: usize = 512;

/// Physical bit-placement layout of a Bloom filter.
///
/// Both layouts are k = 2 filters over the same key hashes; they differ
/// only in *where* the two bits live:
///
/// * `Standard` spreads both bits uniformly over the whole bit array —
///   the textbook layout, two independent cache misses per probe;
/// * `Blocked` confines both bits to one 512-bit (64-byte) block chosen
///   by the key's first hash, so a probe touches exactly one cache line
///   (the register-blocked design of Putze et al. and the Parquet
///   split-block filter). Block-local collisions raise the FPR slightly;
///   [`blocked_fpr`] quantifies the correction so the cost model stays
///   honest about the layout it runs.
///
/// `Blocked` is the default: with the probe path bandwidth-shaped, the
/// one-miss-per-probe layout wins end to end and the estimator's FPR math
/// follows it. `Standard` stays selectable (`SET bloom_layout = standard`)
/// and remains the equivalence-test oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BloomLayout {
    /// Uniform bit placement over the whole array.
    Standard,
    /// Cache-line-blocked placement: one block, one miss per probe.
    #[default]
    Blocked,
}

impl BloomLayout {
    /// Display label (also the accepted `FromStr` spellings).
    pub fn label(self) -> &'static str {
        match self {
            BloomLayout::Standard => "standard",
            BloomLayout::Blocked => "blocked",
        }
    }

    /// All layouts, oracle first (`standard` is the equivalence oracle).
    pub const ALL: [BloomLayout; 2] = [BloomLayout::Standard, BloomLayout::Blocked];
}

impl FromStr for BloomLayout {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "standard" | "std" => Ok(BloomLayout::Standard),
            "blocked" | "block" | "cacheline" => Ok(BloomLayout::Blocked),
            other => Err(format!(
                "unknown bloom layout `{other}` (expected standard | blocked)"
            )),
        }
    }
}

impl std::fmt::Display for BloomLayout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Default bits budgeted per expected distinct key.
///
/// With k = 2 and 8 bits/key the theoretical FPR is
/// `(1 - e^(-2/8))^2 ≈ 4.9%`, in the range production systems use for
/// join-pruning filters.
pub const DEFAULT_BITS_PER_KEY: usize = 8;

/// Smallest filter we ever allocate (64 bytes — one cache line).
pub const MIN_BITS: usize = 512;

/// Number of filter bits for an expected `ndv` distinct keys: the next power
/// of two ≥ `ndv * bits_per_key` (power-of-two sizing lets probes mask
/// instead of mod).
pub fn bits_for_ndv(ndv: usize, bits_per_key: usize) -> usize {
    let want = ndv.saturating_mul(bits_per_key).max(MIN_BITS);
    want.next_power_of_two()
}

/// Theoretical false-positive rate of a Bloom filter with `m` bits, `k`
/// hashes and `n` inserted keys: `(1 - e^(-kn/m))^k`.
pub fn false_positive_rate(m_bits: f64, k: f64, n_keys: f64) -> f64 {
    if m_bits <= 0.0 || n_keys <= 0.0 {
        return 0.0;
    }
    (1.0 - (-k * n_keys / m_bits).exp()).powf(k).clamp(0.0, 1.0)
}

/// Theoretical false-positive rate of a *blocked* filter: `m` total bits in
/// 512-bit blocks, k = 2 bits per key confined to the key's block.
///
/// The number of keys landing in one block is Binomial(n, B/m) ≈
/// Poisson(λ = nB/m); a block holding `j` keys answers a miss positively
/// with probability `(1 − 1/B)·p² + (1/B)·p` where `p = 1 − e^(−2j/B)` is
/// the per-position fill — the `1/B` term is the probe whose two derived
/// positions coincide (effectively k = 1). The overall FPR is the Poisson
/// mixture of the per-block rates, which is strictly ≥ the standard-layout
/// formula at the same size: the variance of the block loads is the price
/// of the single cache miss.
pub fn blocked_fpr(m_bits: f64, n_keys: f64) -> f64 {
    if m_bits <= 0.0 || n_keys <= 0.0 {
        return 0.0;
    }
    let b = BLOCK_BITS as f64;
    let lambda = n_keys * b / m_bits;
    // Walk the Poisson pmf iteratively until the remaining tail is noise.
    let mut pmf = (-lambda).exp();
    let mut fpr = 0.0;
    let mut covered = 0.0;
    let mut j = 0.0f64;
    loop {
        let p = 1.0 - (-2.0 * j / b).exp();
        fpr += pmf * ((1.0 - 1.0 / b) * p * p + (1.0 / b) * p);
        covered += pmf;
        if covered > 1.0 - 1e-12 || j > lambda + 12.0 * lambda.sqrt() + 40.0 {
            // Whatever tail mass remains belongs to overfull blocks; count
            // it as certain false positives so the estimate stays an upper
            // bound rather than silently optimistic.
            fpr += 1.0 - covered;
            break;
        }
        j += 1.0;
        pmf *= lambda / j;
    }
    fpr.clamp(0.0, 1.0)
}

/// FPR of a filter with `m` bits and `n` keys under the given layout.
pub fn fpr_for_layout(layout: BloomLayout, m_bits: f64, n_keys: f64) -> f64 {
    match layout {
        BloomLayout::Standard => false_positive_rate(m_bits, NUM_HASHES as f64, n_keys),
        BloomLayout::Blocked => blocked_fpr(m_bits, n_keys),
    }
}

/// FPR for the engine's default configuration given `ndv` expected keys.
pub fn default_fpr(ndv: f64) -> f64 {
    default_fpr_layout(BloomLayout::Standard, ndv)
}

/// FPR for the engine's default sizing given `ndv` expected keys, under the
/// layout the runtime will actually build — the quantity the cost model
/// must use so plan choice reflects the configured layout.
pub fn default_fpr_layout(layout: BloomLayout, ndv: f64) -> f64 {
    let m = bits_for_ndv(ndv.max(1.0) as usize, DEFAULT_BITS_PER_KEY) as f64;
    fpr_for_layout(layout, m, ndv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizing_is_power_of_two_and_bounded_below() {
        assert_eq!(bits_for_ndv(0, 8), MIN_BITS);
        assert_eq!(bits_for_ndv(1, 8), MIN_BITS);
        let bits = bits_for_ndv(1000, 8);
        assert!(bits >= 8000);
        assert!(bits.is_power_of_two());
    }

    #[test]
    fn fpr_matches_closed_form() {
        // m = 8n, k = 2: (1 - e^-0.25)^2.
        let expected = (1.0 - (-0.25f64).exp()).powi(2);
        let got = false_positive_rate(8000.0, 2.0, 1000.0);
        assert!((got - expected).abs() < 1e-12);
    }

    #[test]
    fn fpr_monotone_in_load() {
        let f1 = false_positive_rate(1024.0, 2.0, 10.0);
        let f2 = false_positive_rate(1024.0, 2.0, 100.0);
        let f3 = false_positive_rate(1024.0, 2.0, 1000.0);
        assert!(f1 < f2 && f2 < f3);
        assert!(f3 <= 1.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(false_positive_rate(0.0, 2.0, 10.0), 0.0);
        assert_eq!(false_positive_rate(100.0, 2.0, 0.0), 0.0);
    }

    #[test]
    fn default_fpr_reasonable() {
        let f = default_fpr(1_000_000.0);
        assert!(f > 0.0 && f < 0.10, "default fpr {f} out of expected band");
    }

    #[test]
    fn blocked_fpr_exceeds_standard_but_stays_close() {
        for ndv in [1_000.0, 100_000.0, 2_000_000.0] {
            let std = default_fpr_layout(BloomLayout::Standard, ndv);
            let blk = default_fpr_layout(BloomLayout::Blocked, ndv);
            assert!(blk > std, "blocked fpr must include the correction");
            // The correction is real but small at 8 bits/key: well under 2x.
            assert!(blk < std * 2.0, "blocked {blk} vs standard {std} at {ndv}");
        }
    }

    #[test]
    fn blocked_fpr_monotone_and_bounded() {
        let f1 = blocked_fpr(8192.0, 100.0);
        let f2 = blocked_fpr(8192.0, 1_000.0);
        let f3 = blocked_fpr(8192.0, 10_000.0);
        assert!(f1 < f2 && f2 < f3);
        assert!(f3 <= 1.0);
        assert_eq!(blocked_fpr(0.0, 10.0), 0.0);
        assert_eq!(blocked_fpr(8192.0, 0.0), 0.0);
    }

    #[test]
    fn layout_labels_round_trip() {
        for layout in BloomLayout::ALL {
            assert_eq!(layout.label().parse::<BloomLayout>(), Ok(layout));
        }
        assert!("nope".parse::<BloomLayout>().is_err());
        assert_eq!(BloomLayout::default(), BloomLayout::Blocked);
    }
}
