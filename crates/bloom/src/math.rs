//! Sizing and false-positive math shared by the runtime and the cost model.

/// Number of hash functions; the paper fixes this at two (§3.5).
pub const NUM_HASHES: u32 = 2;

/// Default bits budgeted per expected distinct key.
///
/// With k = 2 and 8 bits/key the theoretical FPR is
/// `(1 - e^(-2/8))^2 ≈ 4.9%`, in the range production systems use for
/// join-pruning filters.
pub const DEFAULT_BITS_PER_KEY: usize = 8;

/// Smallest filter we ever allocate (64 bytes — one cache line).
pub const MIN_BITS: usize = 512;

/// Number of filter bits for an expected `ndv` distinct keys: the next power
/// of two ≥ `ndv * bits_per_key` (power-of-two sizing lets probes mask
/// instead of mod).
pub fn bits_for_ndv(ndv: usize, bits_per_key: usize) -> usize {
    let want = ndv.saturating_mul(bits_per_key).max(MIN_BITS);
    want.next_power_of_two()
}

/// Theoretical false-positive rate of a Bloom filter with `m` bits, `k`
/// hashes and `n` inserted keys: `(1 - e^(-kn/m))^k`.
pub fn false_positive_rate(m_bits: f64, k: f64, n_keys: f64) -> f64 {
    if m_bits <= 0.0 || n_keys <= 0.0 {
        return 0.0;
    }
    (1.0 - (-k * n_keys / m_bits).exp()).powf(k).clamp(0.0, 1.0)
}

/// FPR for the engine's default configuration given `ndv` expected keys.
pub fn default_fpr(ndv: f64) -> f64 {
    let m = bits_for_ndv(ndv.max(1.0) as usize, DEFAULT_BITS_PER_KEY) as f64;
    false_positive_rate(m, NUM_HASHES as f64, ndv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizing_is_power_of_two_and_bounded_below() {
        assert_eq!(bits_for_ndv(0, 8), MIN_BITS);
        assert_eq!(bits_for_ndv(1, 8), MIN_BITS);
        let bits = bits_for_ndv(1000, 8);
        assert!(bits >= 8000);
        assert!(bits.is_power_of_two());
    }

    #[test]
    fn fpr_matches_closed_form() {
        // m = 8n, k = 2: (1 - e^-0.25)^2.
        let expected = (1.0 - (-0.25f64).exp()).powi(2);
        let got = false_positive_rate(8000.0, 2.0, 1000.0);
        assert!((got - expected).abs() < 1e-12);
    }

    #[test]
    fn fpr_monotone_in_load() {
        let f1 = false_positive_rate(1024.0, 2.0, 10.0);
        let f2 = false_positive_rate(1024.0, 2.0, 100.0);
        let f3 = false_positive_rate(1024.0, 2.0, 1000.0);
        assert!(f1 < f2 && f2 < f3);
        assert!(f3 <= 1.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(false_positive_rate(0.0, 2.0, 10.0), 0.0);
        assert_eq!(false_positive_rate(100.0, 2.0, 0.0), 0.0);
    }

    #[test]
    fn default_fpr_reasonable() {
        let f = default_fpr(1_000_000.0);
        assert!(f > 0.0 && f < 0.10, "default fpr {f} out of expected band");
    }
}
