//! The runtime rendezvous between filter producers (hash joins) and
//! consumers (table scans).
//!
//! The paper's runtime makes "table scans wait for all Bloom filter
//! partitions to become available before scanning can proceed, regardless of
//! streaming strategy" (§3.9, and the Q18 discussion in §4.3). [`FilterHub`]
//! implements exactly that contract: producers [`FilterHub::publish`] under a
//! [`FilterId`]; consumers [`FilterHub::wait_get`] and block until the filter
//! exists.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use bfq_common::FilterId;
use bfq_storage::Column;
use parking_lot::{Condvar, Mutex};

use crate::filter::BloomFilter;
use crate::partitioned::PartitionedBloomFilter;

/// The filter proper: merged single or per-partition.
#[derive(Debug, Clone)]
pub enum FilterCore {
    /// One filter applied to every row.
    Single(BloomFilter),
    /// Per-partition partials probed by distributed lookup.
    Partitioned(PartitionedBloomFilter),
}

/// A filter as it exists at runtime: the bit array(s) plus optional
/// build-key metadata that enables *chunk-level* skipping at scans.
///
/// When the build keys are numeric their min/max travel with the filter, so
/// a scan can compare them against a chunk's zone map; when the build side
/// is small the exact `(h1, h2)` key hashes travel too, so a scan can probe
/// a chunk's Bloom index with them (`bfq-index`). Large numeric builds
/// instead carry a [`crate::KeySummary`] — the merged per-partition occupancy
/// bitmap — so chunk skipping survives past the exact-hash limit. All are
/// sound: a row the skip would drop could never match any actual build key,
/// and a filter is only planned where dropping non-matching rows is legal.
#[derive(Debug, Clone)]
pub struct RuntimeFilter {
    core: FilterCore,
    key_bounds: Option<(f64, f64)>,
    key_hashes: Option<Vec<(u64, u64)>>,
    key_summary: Option<crate::summary::KeySummary>,
}

impl RuntimeFilter {
    /// A single-filter runtime filter without key metadata.
    pub fn single(f: BloomFilter) -> Self {
        RuntimeFilter {
            core: FilterCore::Single(f),
            key_bounds: None,
            key_hashes: None,
            key_summary: None,
        }
    }

    /// A partitioned runtime filter without key metadata.
    pub fn partitioned(pf: PartitionedBloomFilter) -> Self {
        RuntimeFilter {
            core: FilterCore::Partitioned(pf),
            key_bounds: None,
            key_hashes: None,
            key_summary: None,
        }
    }

    /// Attach build-key metadata (builder style).
    pub fn with_key_info(
        mut self,
        bounds: Option<(f64, f64)>,
        hashes: Option<Vec<(u64, u64)>>,
        summary: Option<crate::summary::KeySummary>,
    ) -> Self {
        self.key_bounds = bounds;
        self.key_hashes = hashes;
        self.key_summary = summary;
        self
    }

    /// The underlying filter.
    pub fn core(&self) -> &FilterCore {
        &self.core
    }

    /// Min/max of the non-null build keys on the numeric axis, if known.
    pub fn key_bounds(&self) -> Option<(f64, f64)> {
        self.key_bounds
    }

    /// Exact `(h1, h2)` hashes of the distinct build keys, when the build
    /// side was small enough to ship them (possibly empty: an empty build
    /// side passes nothing).
    pub fn key_hashes(&self) -> Option<&[(u64, u64)]> {
        self.key_hashes.as_deref()
    }

    /// The build-key occupancy summary carried for large numeric builds
    /// (the zone-style fallback when exact key hashes were dropped).
    pub fn key_summary(&self) -> Option<&crate::summary::KeySummary> {
        self.key_summary.as_ref()
    }

    /// Probe `col` rows selected by `sel`; returns the surviving selection.
    pub fn probe(&self, col: &Column, sel: &[u32]) -> Vec<u32> {
        match &self.core {
            FilterCore::Single(f) => f.probe_selected(col, sel),
            FilterCore::Partitioned(pf) => pf.probe_routed(col, sel),
        }
    }

    /// Aligned probe for partition `part` (falls back to routed/single probe
    /// when alignment does not apply).
    pub fn probe_partition(&self, part: usize, col: &Column, sel: &[u32]) -> Vec<u32> {
        match &self.core {
            FilterCore::Single(f) => f.probe_selected(col, sel),
            FilterCore::Partitioned(pf) => {
                if part < pf.partitions() {
                    pf.probe_aligned(part, col, sel)
                } else {
                    pf.probe_routed(col, sel)
                }
            }
        }
    }

    /// Total size in bytes (planning feedback / tests).
    pub fn size_bytes(&self) -> usize {
        match &self.core {
            FilterCore::Single(f) => f.size_bytes(),
            FilterCore::Partitioned(pf) => pf.size_bytes(),
        }
    }
}

/// Shared registry of built filters, keyed by the planner's [`FilterId`].
#[derive(Default)]
pub struct FilterHub {
    inner: Mutex<HashMap<FilterId, Arc<RuntimeFilter>>>,
    ready: Condvar,
}

impl FilterHub {
    /// An empty hub.
    pub fn new() -> Self {
        FilterHub::default()
    }

    /// Publish a built filter. Publishing the same id twice replaces the
    /// filter (used by retry paths in tests); waiting consumers wake either
    /// way.
    pub fn publish(&self, id: FilterId, filter: RuntimeFilter) {
        let mut map = self.inner.lock();
        map.insert(id, Arc::new(filter));
        self.ready.notify_all();
    }

    /// Non-blocking lookup.
    pub fn try_get(&self, id: FilterId) -> Option<Arc<RuntimeFilter>> {
        self.inner.lock().get(&id).cloned()
    }

    /// Block until the filter identified by `id` is published.
    ///
    /// `timeout` bounds the wait so a planning bug (a scan waiting on a
    /// filter nobody builds) surfaces as `None` instead of a hang.
    pub fn wait_get(&self, id: FilterId, timeout: Duration) -> Option<Arc<RuntimeFilter>> {
        let mut map = self.inner.lock();
        if let Some(f) = map.get(&id) {
            return Some(f.clone());
        }
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let res = self.ready.wait_until(&mut map, deadline);
            if let Some(f) = map.get(&id) {
                return Some(f.clone());
            }
            if res.timed_out() {
                return None;
            }
        }
    }

    /// Number of published filters.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether no filters are published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn single_filter(keys: &[i64]) -> RuntimeFilter {
        let mut f = BloomFilter::with_expected_ndv(keys.len().max(1));
        for &k in keys {
            f.insert_i64(k);
        }
        RuntimeFilter::single(f)
    }

    #[test]
    fn publish_then_get() {
        let hub = FilterHub::new();
        assert!(hub.is_empty());
        hub.publish(FilterId(1), single_filter(&[1, 2, 3]));
        assert_eq!(hub.len(), 1);
        let f = hub.try_get(FilterId(1)).unwrap();
        let col = Column::Int64(vec![2, 99], None);
        assert!(f.probe(&col, &[0, 1]).contains(&0));
        assert!(hub.try_get(FilterId(2)).is_none());
    }

    #[test]
    fn wait_get_blocks_until_published() {
        let hub = Arc::new(FilterHub::new());
        let hub2 = hub.clone();
        let waiter = std::thread::spawn(move || {
            hub2.wait_get(FilterId(7), Duration::from_secs(5))
                .expect("filter should arrive")
        });
        std::thread::sleep(Duration::from_millis(20));
        hub.publish(FilterId(7), single_filter(&[42]));
        let f = waiter.join().unwrap();
        let col = Column::Int64(vec![42], None);
        assert_eq!(f.probe(&col, &[0]), vec![0]);
    }

    #[test]
    fn wait_get_times_out_for_missing_filter() {
        let hub = FilterHub::new();
        let got = hub.wait_get(FilterId(9), Duration::from_millis(30));
        assert!(got.is_none());
    }

    #[test]
    fn probe_partition_dispatch() {
        let mut pf = PartitionedBloomFilter::new(2, 10);
        pf.insert_column_routed(&Column::Int64(vec![1, 2, 3, 4], None));
        let rf = RuntimeFilter::partitioned(pf);
        let col = Column::Int64(vec![1, 2, 3, 4], None);
        // Routed probe must find everything.
        assert_eq!(rf.probe(&col, &[0, 1, 2, 3]).len(), 4);
        assert!(rf.size_bytes() > 0);
        // Out-of-range partition falls back to routed probing.
        assert_eq!(rf.probe_partition(99, &col, &[0, 1, 2, 3]).len(), 4);
    }
}
