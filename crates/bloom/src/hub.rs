//! The runtime rendezvous between filter producers (hash joins) and
//! consumers (table scans).
//!
//! The paper's runtime makes "table scans wait for all Bloom filter
//! partitions to become available before scanning can proceed, regardless of
//! streaming strategy" (§3.9, and the Q18 discussion in §4.3). [`FilterHub`]
//! implements exactly that contract: producers [`FilterHub::publish`] under a
//! [`FilterId`]; consumers [`FilterHub::wait_get`] and block until the filter
//! exists.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use bfq_common::FilterId;
use bfq_storage::Column;
use parking_lot::{Condvar, Mutex};

use crate::filter::{BloomFilter, BLOOM_SEED_1, BLOOM_SEED_2};
use crate::partitioned::PartitionedBloomFilter;

/// Reusable buffers for batched filter probes: the per-seed hash columns
/// plus a pair of selection vectors the executor ping-pongs between
/// filters. One scratch lives per worker thread and is reused across every
/// morsel it processes, so steady-state probing allocates nothing — each
/// buffer grows to the largest chunk once and stays there.
///
/// [`ProbeScratch::grows`] counts capacity growths across all buffers; the
/// executor surfaces the total so tests can assert the steady state (the
/// count stops rising after warm-up no matter how many morsels follow).
#[derive(Debug, Default)]
pub struct ProbeScratch {
    h1: Vec<u64>,
    h2: Vec<u64>,
    /// Selection vector A (executor ping-pong; take with `std::mem::take`).
    pub sel_a: Vec<u32>,
    /// Selection vector B.
    pub sel_b: Vec<u32>,
    grows: u64,
}

impl ProbeScratch {
    /// Empty scratch; buffers size themselves on first use.
    pub fn new() -> Self {
        ProbeScratch::default()
    }

    /// How many times any buffer had to grow its capacity.
    pub fn grows(&self) -> u64 {
        self.grows
    }

    /// Drain the growth counter (returns the count since the last drain) —
    /// for callers that report incrementally into shared statistics.
    pub fn take_grows(&mut self) -> u64 {
        std::mem::take(&mut self.grows)
    }

    /// Record an externally observed buffer growth (the executor's own
    /// selection buffers share this scratch's accounting).
    pub fn note_growth(&mut self) {
        self.grows += 1;
    }

    /// Hash `col` with the filter seeds into the reusable buffers
    /// (`h2` only when the probing filter consumes it).
    fn hash_column(&mut self, col: &Column, needs_h2: bool) {
        let c1 = self.h1.capacity();
        col.hash_into(BLOOM_SEED_1, &mut self.h1);
        if self.h1.capacity() > c1 {
            self.grows += 1;
        }
        if needs_h2 {
            let c2 = self.h2.capacity();
            col.hash_into(BLOOM_SEED_2, &mut self.h2);
            if self.h2.capacity() > c2 {
                self.grows += 1;
            }
        } else {
            self.h2.clear();
        }
    }
}

/// Exact hashes of the distinct build keys a small build side ships with
/// its filter, for probing per-chunk Bloom indexes (`bfq-index`).
///
/// Standard-layout chunk filters consume both seed hashes, so the pairs
/// variant carries `(h1, h2)`. Blocked filters derive every bit position
/// from the first hash alone ([`BloomFilter::needs_second_hash`] is
/// false), so when the session layout is blocked the build ships only
/// `h1` — halving the per-key metadata on the chunk-skipping hot path.
/// First-only hashes can prove a skip only against a chunk filter that
/// itself ignores `h2`; the pruner checks that at probe time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyHashes {
    /// `(h1, h2)` per distinct key (standard layout).
    Pairs(Vec<(u64, u64)>),
    /// `h1` per distinct key (blocked layout; `h2` is never consumed).
    FirstOnly(Vec<u64>),
}

impl KeyHashes {
    /// Number of distinct key hashes shipped.
    pub fn len(&self) -> usize {
        match self {
            KeyHashes::Pairs(v) => v.len(),
            KeyHashes::FirstOnly(v) => v.len(),
        }
    }

    /// Whether the build side passed no keys at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The filter proper: merged single or per-partition.
#[derive(Debug, Clone)]
pub enum FilterCore {
    /// One filter applied to every row.
    Single(BloomFilter),
    /// Per-partition partials probed by distributed lookup.
    Partitioned(PartitionedBloomFilter),
}

/// A filter as it exists at runtime: the bit array(s) plus optional
/// build-key metadata that enables *chunk-level* skipping at scans.
///
/// When the build keys are numeric their min/max travel with the filter, so
/// a scan can compare them against a chunk's zone map; when the build side
/// is small the exact `(h1, h2)` key hashes travel too, so a scan can probe
/// a chunk's Bloom index with them (`bfq-index`). Large numeric builds
/// instead carry a [`crate::KeySummary`] — the merged per-partition occupancy
/// bitmap — so chunk skipping survives past the exact-hash limit. All are
/// sound: a row the skip would drop could never match any actual build key,
/// and a filter is only planned where dropping non-matching rows is legal.
#[derive(Debug, Clone)]
pub struct RuntimeFilter {
    core: FilterCore,
    key_bounds: Option<(f64, f64)>,
    key_hashes: Option<KeyHashes>,
    key_summary: Option<crate::summary::KeySummary>,
}

impl RuntimeFilter {
    /// A single-filter runtime filter without key metadata.
    pub fn single(f: BloomFilter) -> Self {
        RuntimeFilter {
            core: FilterCore::Single(f),
            key_bounds: None,
            key_hashes: None,
            key_summary: None,
        }
    }

    /// A partitioned runtime filter without key metadata.
    pub fn partitioned(pf: PartitionedBloomFilter) -> Self {
        RuntimeFilter {
            core: FilterCore::Partitioned(pf),
            key_bounds: None,
            key_hashes: None,
            key_summary: None,
        }
    }

    /// Attach build-key metadata (builder style).
    pub fn with_key_info(
        mut self,
        bounds: Option<(f64, f64)>,
        hashes: Option<KeyHashes>,
        summary: Option<crate::summary::KeySummary>,
    ) -> Self {
        self.key_bounds = bounds;
        self.key_hashes = hashes;
        self.key_summary = summary;
        self
    }

    /// The underlying filter.
    pub fn core(&self) -> &FilterCore {
        &self.core
    }

    /// Min/max of the non-null build keys on the numeric axis, if known.
    pub fn key_bounds(&self) -> Option<(f64, f64)> {
        self.key_bounds
    }

    /// Exact hashes of the distinct build keys, when the build side was
    /// small enough to ship them (possibly empty: an empty build side
    /// passes nothing). Pairs under the standard layout, first-hash-only
    /// under the blocked layout.
    pub fn key_hashes(&self) -> Option<&KeyHashes> {
        self.key_hashes.as_ref()
    }

    /// The build-key occupancy summary carried for large numeric builds
    /// (the zone-style fallback when exact key hashes were dropped).
    pub fn key_summary(&self) -> Option<&crate::summary::KeySummary> {
        self.key_summary.as_ref()
    }

    /// Whether probing consumes the second key hash (standard layout only;
    /// blocked filters derive both bits from the first hash).
    pub fn needs_second_hash(&self) -> bool {
        match &self.core {
            FilterCore::Single(f) => f.needs_second_hash(),
            FilterCore::Partitioned(pf) => pf.needs_second_hash(),
        }
    }

    /// Batched probe: hash `col` once into `scratch`, test the rows
    /// selected by `sel` (all rows when `None`), and write survivors into
    /// the caller-owned `out` (cleared first). Null keys never survive.
    ///
    /// This is the executor's hot path: one columnar hash pass per chunk
    /// (one seed for blocked filters, two for standard) and zero
    /// allocations once the scratch and `out` reach steady-state capacity.
    /// When `sel` keeps only a sliver of the chunk (an upstream predicate
    /// already did the work), hashing the whole column would cost more
    /// than it saves — those probes take a scalar per-selected-row path
    /// instead.
    pub fn probe_into(
        &self,
        col: &Column,
        sel: Option<&[u32]>,
        scratch: &mut ProbeScratch,
        out: &mut Vec<u32>,
    ) {
        // Columnar hashing costs ~len; scalar hashing costs ~|sel| per
        // seed with worse per-key constants. Cross over at 1/4 density.
        if let Some(sel) = sel {
            if sel.len() * 4 < col.len() {
                return self.probe_sparse(col, sel, scratch, out);
            }
        }
        scratch.hash_column(col, self.needs_second_hash());
        let cap = out.capacity();
        match &self.core {
            FilterCore::Single(f) => {
                f.probe_hashes_into(&scratch.h1, &scratch.h2, col.validity(), sel, out)
            }
            FilterCore::Partitioned(pf) => {
                pf.probe_routed_hashes_into(&scratch.h1, &scratch.h2, col.validity(), sel, out)
            }
        }
        if out.capacity() > cap {
            scratch.grows += 1;
        }
    }

    /// Sparse-selection probe: hash only the selected rows, row at a time
    /// (still allocation-free — survivors go into the caller's `out`).
    fn probe_sparse(
        &self,
        col: &Column,
        sel: &[u32],
        scratch: &mut ProbeScratch,
        out: &mut Vec<u32>,
    ) {
        use crate::filter::{BLOOM_SEED_1, BLOOM_SEED_2};
        let cap = out.capacity();
        out.clear();
        let second = self.needs_second_hash();
        out.extend(sel.iter().copied().filter(|&i| {
            let i = i as usize;
            if col.is_null(i) {
                return false;
            }
            let h1 = col.hash_one(i, BLOOM_SEED_1);
            let h2 = if second {
                col.hash_one(i, BLOOM_SEED_2)
            } else {
                0
            };
            match &self.core {
                FilterCore::Single(f) => f.contains_hashes(h1, h2),
                FilterCore::Partitioned(pf) => {
                    let p = crate::partitioned::partition_of(h1, pf.partitions());
                    pf.part(p).contains_hashes(h1, h2)
                }
            }
        }));
        if out.capacity() > cap {
            scratch.grows += 1;
        }
    }

    /// Batched aligned probe for partition `part` (falls back to the
    /// routed/single probe when alignment does not apply).
    pub fn probe_partition_into(
        &self,
        part: usize,
        col: &Column,
        sel: Option<&[u32]>,
        scratch: &mut ProbeScratch,
        out: &mut Vec<u32>,
    ) {
        match &self.core {
            FilterCore::Partitioned(pf) if part < pf.partitions() => {
                let f = pf.part(part);
                scratch.hash_column(col, f.needs_second_hash());
                let cap = out.capacity();
                f.probe_hashes_into(&scratch.h1, &scratch.h2, col.validity(), sel, out);
                if out.capacity() > cap {
                    scratch.grows += 1;
                }
            }
            _ => self.probe_into(col, sel, scratch, out),
        }
    }

    /// Probe `col` rows selected by `sel`; returns the surviving selection
    /// (allocating wrapper over [`RuntimeFilter::probe_into`]).
    pub fn probe(&self, col: &Column, sel: &[u32]) -> Vec<u32> {
        let mut scratch = ProbeScratch::new();
        let mut out = Vec::with_capacity(sel.len());
        self.probe_into(col, Some(sel), &mut scratch, &mut out);
        out
    }

    /// Aligned probe for partition `part` (falls back to routed/single probe
    /// when alignment does not apply).
    pub fn probe_partition(&self, part: usize, col: &Column, sel: &[u32]) -> Vec<u32> {
        let mut scratch = ProbeScratch::new();
        let mut out = Vec::with_capacity(sel.len());
        self.probe_partition_into(part, col, Some(sel), &mut scratch, &mut out);
        out
    }

    /// Total size in bytes (planning feedback / tests).
    pub fn size_bytes(&self) -> usize {
        match &self.core {
            FilterCore::Single(f) => f.size_bytes(),
            FilterCore::Partitioned(pf) => pf.size_bytes(),
        }
    }
}

/// Shared registry of built filters, keyed by the planner's [`FilterId`].
#[derive(Default)]
pub struct FilterHub {
    inner: Mutex<HashMap<FilterId, Arc<RuntimeFilter>>>,
    ready: Condvar,
}

impl FilterHub {
    /// An empty hub.
    pub fn new() -> Self {
        FilterHub::default()
    }

    /// Publish a built filter. Publishing the same id twice replaces the
    /// filter (used by retry paths in tests); waiting consumers wake either
    /// way.
    pub fn publish(&self, id: FilterId, filter: RuntimeFilter) {
        let mut map = self.inner.lock();
        map.insert(id, Arc::new(filter));
        self.ready.notify_all();
    }

    /// Non-blocking lookup.
    pub fn try_get(&self, id: FilterId) -> Option<Arc<RuntimeFilter>> {
        self.inner.lock().get(&id).cloned()
    }

    /// Block until the filter identified by `id` is published.
    ///
    /// `timeout` bounds the wait so a planning bug (a scan waiting on a
    /// filter nobody builds) surfaces as `None` instead of a hang.
    pub fn wait_get(&self, id: FilterId, timeout: Duration) -> Option<Arc<RuntimeFilter>> {
        let mut map = self.inner.lock();
        if let Some(f) = map.get(&id) {
            return Some(f.clone());
        }
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let res = self.ready.wait_until(&mut map, deadline);
            if let Some(f) = map.get(&id) {
                return Some(f.clone());
            }
            if res.timed_out() {
                return None;
            }
        }
    }

    /// Number of published filters.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether no filters are published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn single_filter(keys: &[i64]) -> RuntimeFilter {
        let mut f = BloomFilter::with_expected_ndv(keys.len().max(1));
        for &k in keys {
            f.insert_i64(k);
        }
        RuntimeFilter::single(f)
    }

    #[test]
    fn publish_then_get() {
        let hub = FilterHub::new();
        assert!(hub.is_empty());
        hub.publish(FilterId(1), single_filter(&[1, 2, 3]));
        assert_eq!(hub.len(), 1);
        let f = hub.try_get(FilterId(1)).unwrap();
        let col = Column::Int64(vec![2, 99], None);
        assert!(f.probe(&col, &[0, 1]).contains(&0));
        assert!(hub.try_get(FilterId(2)).is_none());
    }

    #[test]
    fn wait_get_blocks_until_published() {
        let hub = Arc::new(FilterHub::new());
        let hub2 = hub.clone();
        let waiter = std::thread::spawn(move || {
            hub2.wait_get(FilterId(7), Duration::from_secs(5))
                .expect("filter should arrive")
        });
        std::thread::sleep(Duration::from_millis(20));
        hub.publish(FilterId(7), single_filter(&[42]));
        let f = waiter.join().unwrap();
        let col = Column::Int64(vec![42], None);
        assert_eq!(f.probe(&col, &[0]), vec![0]);
    }

    #[test]
    fn wait_get_times_out_for_missing_filter() {
        let hub = FilterHub::new();
        let got = hub.wait_get(FilterId(9), Duration::from_millis(30));
        assert!(got.is_none());
    }

    #[test]
    fn probe_partition_dispatch() {
        let mut pf = PartitionedBloomFilter::new(2, 10);
        pf.insert_column_routed(&Column::Int64(vec![1, 2, 3, 4], None));
        let rf = RuntimeFilter::partitioned(pf);
        let col = Column::Int64(vec![1, 2, 3, 4], None);
        // Routed probe must find everything.
        assert_eq!(rf.probe(&col, &[0, 1, 2, 3]).len(), 4);
        assert!(rf.size_bytes() > 0);
        // Out-of-range partition falls back to routed probing.
        assert_eq!(rf.probe_partition(99, &col, &[0, 1, 2, 3]).len(), 4);
    }
}
