//! Cache-line-blocked bit placement.
//!
//! The standard layout spreads a key's two bits uniformly over the whole
//! bit array, so every probe of a filter larger than cache pays **two**
//! independent memory stalls. The blocked layout (Putze et al.,
//! *Cache-, Hash- and Space-Efficient Bloom Filters*; the Parquet
//! split-block filter) confines both bits to one 512-bit block — one
//! cache line — chosen by the key's hash, so a probe is one load-miss
//! followed by register-resident bit tests.
//!
//! Everything derives from a **single** 64-bit key hash `h`:
//!
//! * the block index via multiply-shift range reduction on the high 32
//!   bits (`(h >> 32) * nblocks >> 32` — unbiased for any block count);
//! * the two in-block bit positions from the low 32 bits via two distinct
//!   odd multipliers, taking the top `log2(512) = 9` product bits (a
//!   2-universal multiply-shift family, independent of the block choice).
//!
//! Needing only one hash per key is half the hashing work of the standard
//! layout's two seeds; [`crate::BloomFilter::needs_second_hash`] lets
//! batch probe paths skip computing the second hash column entirely.
//!
//! The price is block-local collisions: block loads vary
//! (Poisson-distributed), overfull blocks answer misses positively more
//! often, and the two derived positions coincide for 1/512 of probes
//! (effectively k = 1). [`crate::math::blocked_fpr`] quantifies the
//! resulting FPR lift so the optimizer costs the layout it runs.

/// 64-bit words per 512-bit block.
pub const BLOCK_WORDS: usize = 8;

/// Odd multiplier deriving the first in-block bit (from the SBBF salt
/// family; any fixed odd constants work, they just must differ).
const ODD_MULT_1: u32 = 0x47b6_137b;
/// Odd multiplier deriving the second in-block bit.
const ODD_MULT_2: u32 = 0x4463_6a91;

/// The block a key hash routes to, of `nblocks` total.
#[inline]
pub fn block_of(h: u64, nblocks: usize) -> usize {
    // Multiply-shift range reduction on the high half: unbiased, no modulo,
    // and decorrelated from the low half that picks the in-block bits.
    (((h >> 32) * nblocks as u64) >> 32) as usize
}

/// The two in-block bit positions (0..512) derived from a key hash.
#[inline]
pub fn bits_of(h: u64) -> (usize, usize) {
    let low = h as u32;
    let b1 = (low.wrapping_mul(ODD_MULT_1) >> 23) as usize;
    let b2 = (low.wrapping_mul(ODD_MULT_2) >> 23) as usize;
    (b1, b2)
}

/// Set a key's two bits in its block of `words` (`words.len()` must be a
/// multiple of [`BLOCK_WORDS`]).
#[inline]
pub fn insert(words: &mut [u64], nblocks: usize, h: u64) {
    let base = block_of(h, nblocks) * BLOCK_WORDS;
    let (b1, b2) = bits_of(h);
    words[base + b1 / 64] |= 1u64 << (b1 % 64);
    words[base + b2 / 64] |= 1u64 << (b2 % 64);
}

/// Test a key's two bits within its block.
#[inline]
pub fn contains(words: &[u64], nblocks: usize, h: u64) -> bool {
    let (blocks, rest) = words.as_chunks::<BLOCK_WORDS>();
    debug_assert!(rest.is_empty() && blocks.len() == nblocks);
    contains_blocks(blocks, h)
}

/// Test a key against the filter viewed as an array of 8-word blocks.
///
/// This is the probe kernel the batched paths monomorphize around: typing
/// the block as `[u64; 8]` lets the compiler prove the two in-block word
/// indexes (9-bit positions shifted down to 0..8) in range, so the per-key
/// work is one block lookup, three multiplies, two same-line reads and an
/// AND — short enough that the out-of-order window keeps many consecutive
/// keys' (single) cache misses in flight.
#[inline]
pub fn contains_blocks(blocks: &[[u64; BLOCK_WORDS]], h: u64) -> bool {
    let block = &blocks[block_of(h, blocks.len())];
    let (b1, b2) = bits_of(h);
    // One cache line: both words live in the block loaded by the first
    // access. `&` the tests before comparing so the pair stays branch-free.
    let w1 = block[b1 / 64] >> (b1 % 64);
    let w2 = block[b2 / 64] >> (b2 % 64);
    (w1 & w2 & 1) == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_routing_is_in_range_and_spread() {
        let n = 37; // deliberately not a power of two
        let mut counts = vec![0usize; n];
        for k in 0..37_000u64 {
            let h = bfq_common::hash::hash_u64(k, 0x5eed);
            let b = block_of(h, n);
            assert!(b < n);
            counts[b] += 1;
        }
        for &c in &counts {
            assert!(c > 500, "blocks badly balanced: {counts:?}");
        }
    }

    #[test]
    fn bit_positions_cover_the_block() {
        let mut seen = [false; 512];
        for k in 0..100_000u64 {
            let h = bfq_common::hash::hash_u64(k, 0xbeef);
            let (b1, b2) = bits_of(h);
            assert!(b1 < 512 && b2 < 512);
            seen[b1] = true;
            seen[b2] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "some in-block positions unreachable"
        );
    }

    #[test]
    fn insert_then_contains_never_misses() {
        let mut words = vec![0u64; 4 * BLOCK_WORDS];
        for k in 0..1000u64 {
            let h = bfq_common::hash::hash_u64(k, 0x1234);
            insert(&mut words, 4, h);
            assert!(contains(&words, 4, h), "false negative for {k}");
        }
    }
}
