//! The core Bloom filter.

use bfq_common::hash;
use bfq_storage::Column;

use crate::math::{bits_for_ndv, false_positive_rate, DEFAULT_BITS_PER_KEY, NUM_HASHES};

/// Seeds for the two hash functions (paper §3.5 fixes k = 2). The values are
/// arbitrary odd 64-bit constants; what matters is that they differ from each
/// other and from the executor's partitioning seed.
pub const BLOOM_SEED_1: u64 = 0x51ed_270b_9f9c_17e3;
/// Second hash seed.
pub const BLOOM_SEED_2: u64 = 0xb492_b66f_be98_f273;

/// A Bloom filter over single-column hash keys.
///
/// Power-of-two sized so probes mask rather than mod. Inserting never fails;
/// as the filter saturates the false-positive rate degrades gracefully
/// (observable via [`BloomFilter::saturation`], which the paper's future-work
/// section proposes monitoring).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    words: Vec<u64>,
    mask: u64,
    inserted: u64,
}

impl BloomFilter {
    /// A filter sized for `expected_ndv` distinct keys at the default
    /// bits-per-key budget.
    pub fn with_expected_ndv(expected_ndv: usize) -> Self {
        Self::with_bits(bits_for_ndv(expected_ndv, DEFAULT_BITS_PER_KEY))
    }

    /// A filter with exactly `bits` bits (`bits` must be a power of two ≥ 64).
    pub fn with_bits(bits: usize) -> Self {
        assert!(
            bits.is_power_of_two() && bits >= 64,
            "bad filter size {bits}"
        );
        BloomFilter {
            words: vec![0u64; bits / 64],
            mask: (bits - 1) as u64,
            inserted: 0,
        }
    }

    /// Number of bits in the filter.
    pub fn num_bits(&self) -> usize {
        self.words.len() * 64
    }

    /// Number of keys inserted so far (counting duplicates).
    pub fn inserted_keys(&self) -> u64 {
        self.inserted
    }

    /// Memory footprint of the bit array in bytes.
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 8
    }

    #[inline]
    fn set_bit(&mut self, bit: u64) {
        let bit = bit & self.mask;
        self.words[(bit / 64) as usize] |= 1u64 << (bit % 64);
    }

    #[inline]
    fn test_bit(&self, bit: u64) -> bool {
        let bit = bit & self.mask;
        self.words[(bit / 64) as usize] & (1u64 << (bit % 64)) != 0
    }

    /// Insert a pre-hashed key (pass hashes from the two bloom seeds).
    #[inline]
    pub fn insert_hashes(&mut self, h1: u64, h2: u64) {
        self.set_bit(h1);
        self.set_bit(h2);
        self.inserted += 1;
    }

    /// Test a pre-hashed key.
    #[inline]
    pub fn contains_hashes(&self, h1: u64, h2: u64) -> bool {
        self.test_bit(h1) && self.test_bit(h2)
    }

    /// Insert one integer key (convenience for tests and examples).
    pub fn insert_i64(&mut self, v: i64) {
        self.insert_hashes(
            hash::hash_i64(v, BLOOM_SEED_1),
            hash::hash_i64(v, BLOOM_SEED_2),
        );
    }

    /// Test one integer key.
    pub fn contains_i64(&self, v: i64) -> bool {
        self.contains_hashes(
            hash::hash_i64(v, BLOOM_SEED_1),
            hash::hash_i64(v, BLOOM_SEED_2),
        )
    }

    /// Insert every non-null value of a column.
    pub fn insert_column(&mut self, col: &Column) {
        let mut h1 = Vec::new();
        let mut h2 = Vec::new();
        col.hash_into(BLOOM_SEED_1, &mut h1);
        col.hash_into(BLOOM_SEED_2, &mut h2);
        match col.validity() {
            None => {
                for i in 0..col.len() {
                    self.insert_hashes(h1[i], h2[i]);
                }
            }
            Some(bm) => {
                for i in 0..col.len() {
                    if bm.get(i) {
                        self.insert_hashes(h1[i], h2[i]);
                    }
                }
            }
        }
    }

    /// Probe the rows of `col` selected by `sel`, returning the surviving
    /// subset of `sel` (null keys never survive — a NULL join key cannot
    /// match any build row).
    pub fn probe_selected(&self, col: &Column, sel: &[u32]) -> Vec<u32> {
        let mut out = Vec::with_capacity(sel.len());
        for &i in sel {
            let idx = i as usize;
            if col.is_null(idx) {
                continue;
            }
            let h1 = col.hash_one(idx, BLOOM_SEED_1);
            let h2 = col.hash_one(idx, BLOOM_SEED_2);
            if self.contains_hashes(h1, h2) {
                out.push(i);
            }
        }
        out
    }

    /// Probe every row of `col`, returning the selection of survivors.
    pub fn probe_all(&self, col: &Column) -> Vec<u32> {
        let all: Vec<u32> = (0..col.len() as u32).collect();
        self.probe_selected(col, &all)
    }

    /// Bitwise union with a same-sized filter (the merge operation used for
    /// broadcast-probe streaming, paper §3.9 strategy 2).
    ///
    /// # Panics
    /// Panics if the filters have different sizes — merging differently-sized
    /// filters is a planning bug.
    pub fn union_with(&mut self, other: &BloomFilter) {
        assert_eq!(
            self.num_bits(),
            other.num_bits(),
            "cannot union differently sized Bloom filters"
        );
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
        self.inserted += other.inserted;
    }

    /// Fraction of bits set; near-1.0 means the filter is saturated and
    /// filters nothing.
    pub fn saturation(&self) -> f64 {
        let set: u64 = self.words.iter().map(|w| w.count_ones() as u64).sum();
        set as f64 / self.num_bits() as f64
    }

    /// Theoretical FPR at the current load.
    pub fn estimated_fpr(&self) -> f64 {
        false_positive_rate(
            self.num_bits() as f64,
            NUM_HASHES as f64,
            self.inserted as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfq_storage::Bitmap;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::with_expected_ndv(1000);
        for v in 0..1000i64 {
            f.insert_i64(v);
        }
        for v in 0..1000i64 {
            assert!(f.contains_i64(v), "false negative for {v}");
        }
    }

    #[test]
    fn false_positive_rate_in_expected_band() {
        let n = 10_000i64;
        let mut f = BloomFilter::with_expected_ndv(n as usize);
        for v in 0..n {
            f.insert_i64(v);
        }
        let mut fp = 0usize;
        let probes = 100_000i64;
        for v in n..n + probes {
            if f.contains_i64(v) {
                fp += 1;
            }
        }
        let observed = fp as f64 / probes as f64;
        let theoretical = f.estimated_fpr();
        assert!(
            observed < theoretical * 2.0 + 0.01,
            "observed fpr {observed} vs theoretical {theoretical}"
        );
    }

    #[test]
    fn column_insert_and_probe() {
        let build = Column::Int64(vec![1, 2, 3, 4, 5], None);
        let mut f = BloomFilter::with_expected_ndv(5);
        f.insert_column(&build);
        let probe = Column::Int64(vec![3, 99, 1, 77_777], None);
        let sel = f.probe_all(&probe);
        // 3 and 1 must survive; the others may only survive as false positives
        // (essentially impossible at this load).
        assert!(sel.contains(&0) && sel.contains(&2));
        assert!(sel.len() <= 3);
    }

    #[test]
    fn null_keys_are_filtered_out() {
        let build = Column::Int64(vec![1, 2], None);
        let mut f = BloomFilter::with_expected_ndv(2);
        f.insert_column(&build);
        let probe = Column::Int64(vec![1, 1], Some(Bitmap::from_bools([true, false])));
        assert_eq!(f.probe_all(&probe), vec![0]);
    }

    #[test]
    fn null_build_keys_not_inserted() {
        let build = Column::Int64(vec![7, 8], Some(Bitmap::from_bools([true, false])));
        let mut f = BloomFilter::with_expected_ndv(16);
        f.insert_column(&build);
        assert_eq!(f.inserted_keys(), 1);
        assert!(f.contains_i64(7));
    }

    #[test]
    fn probe_selected_respects_input_selection() {
        let build = Column::Int64(vec![10, 20], None);
        let mut f = BloomFilter::with_expected_ndv(2);
        f.insert_column(&build);
        let probe = Column::Int64(vec![10, 20, 10, 20], None);
        let sel = f.probe_selected(&probe, &[1, 3]);
        assert_eq!(sel, vec![1, 3]);
    }

    #[test]
    fn union_or_bits_together() {
        let mut a = BloomFilter::with_bits(1024);
        let mut b = BloomFilter::with_bits(1024);
        a.insert_i64(1);
        b.insert_i64(2);
        assert!(!a.contains_i64(2));
        a.union_with(&b);
        assert!(a.contains_i64(1) && a.contains_i64(2));
        assert_eq!(a.inserted_keys(), 2);
    }

    #[test]
    #[should_panic(expected = "differently sized")]
    fn union_size_mismatch_panics() {
        let mut a = BloomFilter::with_bits(1024);
        let b = BloomFilter::with_bits(2048);
        a.union_with(&b);
    }

    #[test]
    fn saturation_grows_with_load() {
        let mut f = BloomFilter::with_bits(512);
        assert_eq!(f.saturation(), 0.0);
        for v in 0..64 {
            f.insert_i64(v);
        }
        let s1 = f.saturation();
        for v in 64..512 {
            f.insert_i64(v);
        }
        assert!(f.saturation() > s1);
        assert!(f.saturation() <= 1.0);
    }

    #[test]
    fn string_keys() {
        let build: bfq_storage::StrData = ["FRANCE", "GERMANY"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut f = BloomFilter::with_expected_ndv(4);
        f.insert_column(&Column::Utf8(build, None));
        let probe: bfq_storage::StrData =
            ["GERMANY", "JAPAN"].iter().map(|s| s.to_string()).collect();
        let sel = f.probe_all(&Column::Utf8(probe, None));
        assert!(sel.contains(&0));
    }
}
