//! The core Bloom filter.

use bfq_common::hash;
use bfq_storage::{Bitmap, Column};

use crate::blocked;
use crate::math::{bits_for_ndv, fpr_for_layout, BloomLayout, BLOCK_BITS, DEFAULT_BITS_PER_KEY};

/// Seeds for the two hash functions (paper §3.5 fixes k = 2). The values are
/// arbitrary odd 64-bit constants; what matters is that they differ from each
/// other and from the executor's partitioning seed.
pub const BLOOM_SEED_1: u64 = 0x51ed_270b_9f9c_17e3;
/// Second hash seed (unused by the blocked layout, which derives both bit
/// positions from the first hash — see [`BloomFilter::needs_second_hash`]).
pub const BLOOM_SEED_2: u64 = 0xb492_b66f_be98_f273;

/// A Bloom filter over single-column hash keys.
///
/// Power-of-two sized so probes mask rather than mod. The physical bit
/// placement is selected by [`BloomLayout`]: `standard` spreads both bits
/// over the whole array, `blocked` confines them to one 64-byte block so a
/// probe costs a single cache miss ([`crate::blocked`]). Inserting never
/// fails; as the filter saturates the false-positive rate degrades
/// gracefully (observable via [`BloomFilter::saturation`], which the
/// paper's future-work section proposes monitoring).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    words: Vec<u64>,
    mask: u64,
    inserted: u64,
    layout: BloomLayout,
    /// Distinct-key estimate for [`BloomFilter::estimated_fpr`]; `inserted`
    /// counts duplicates, which overstates the load of non-unique builds.
    ndv_hint: Option<u64>,
}

impl BloomFilter {
    /// A standard-layout filter sized for `expected_ndv` distinct keys at
    /// the default bits-per-key budget.
    pub fn with_expected_ndv(expected_ndv: usize) -> Self {
        Self::with_expected_ndv_layout(expected_ndv, BloomLayout::Standard)
    }

    /// A filter sized for `expected_ndv` distinct keys under `layout`.
    pub fn with_expected_ndv_layout(expected_ndv: usize, layout: BloomLayout) -> Self {
        Self::with_bits_layout(bits_for_ndv(expected_ndv, DEFAULT_BITS_PER_KEY), layout)
    }

    /// A standard-layout filter with exactly `bits` bits (`bits` must be a
    /// power of two ≥ 64).
    pub fn with_bits(bits: usize) -> Self {
        Self::with_bits_layout(bits, BloomLayout::Standard)
    }

    /// A filter with exactly `bits` bits under `layout`. Blocked filters
    /// must hold at least one whole 512-bit block ([`crate::math::MIN_BITS`]
    /// sizing always satisfies this).
    pub fn with_bits_layout(bits: usize, layout: BloomLayout) -> Self {
        let min = match layout {
            BloomLayout::Standard => 64,
            BloomLayout::Blocked => BLOCK_BITS,
        };
        assert!(
            bits.is_power_of_two() && bits >= min,
            "bad filter size {bits} for {layout} layout"
        );
        BloomFilter {
            words: vec![0u64; bits / 64],
            mask: (bits - 1) as u64,
            inserted: 0,
            layout,
            ndv_hint: None,
        }
    }

    /// The filter's bit-placement layout.
    pub fn layout(&self) -> BloomLayout {
        self.layout
    }

    /// Whether probes of this filter consume the second key hash. The
    /// blocked layout derives both bit positions from the first hash, so
    /// batch callers can skip hashing the column with [`BLOOM_SEED_2`].
    pub fn needs_second_hash(&self) -> bool {
        self.layout == BloomLayout::Standard
    }

    /// Number of 512-bit blocks (blocked layout).
    #[inline]
    fn nblocks(&self) -> usize {
        self.words.len() / blocked::BLOCK_WORDS
    }

    /// Number of bits in the filter.
    pub fn num_bits(&self) -> usize {
        self.words.len() * 64
    }

    /// Number of keys inserted so far (counting duplicates).
    pub fn inserted_keys(&self) -> u64 {
        self.inserted
    }

    /// Record the builder's distinct-key estimate, used by
    /// [`BloomFilter::estimated_fpr`] in place of the duplicate-counting
    /// insert tally — so a reported FPR matches the sizing math the
    /// optimizer used (which reasons in distinct keys).
    pub fn set_ndv_hint(&mut self, ndv: u64) {
        self.ndv_hint = Some(ndv);
    }

    /// The recorded distinct-key estimate, if any.
    pub fn ndv_hint(&self) -> Option<u64> {
        self.ndv_hint
    }

    /// Memory footprint of the bit array in bytes.
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 8
    }

    #[inline]
    fn set_bit(&mut self, bit: u64) {
        let bit = bit & self.mask;
        self.words[(bit / 64) as usize] |= 1u64 << (bit % 64);
    }

    #[inline]
    fn test_bit(&self, bit: u64) -> bool {
        let bit = bit & self.mask;
        self.words[(bit / 64) as usize] & (1u64 << (bit % 64)) != 0
    }

    /// Insert a pre-hashed key (pass hashes from the two bloom seeds; the
    /// blocked layout ignores `h2`).
    #[inline]
    pub fn insert_hashes(&mut self, h1: u64, h2: u64) {
        match self.layout {
            BloomLayout::Standard => {
                self.set_bit(h1);
                self.set_bit(h2);
            }
            BloomLayout::Blocked => {
                let n = self.nblocks();
                blocked::insert(&mut self.words, n, h1);
            }
        }
        self.inserted += 1;
    }

    /// Test a pre-hashed key.
    #[inline]
    pub fn contains_hashes(&self, h1: u64, h2: u64) -> bool {
        match self.layout {
            BloomLayout::Standard => self.test_bit(h1) && self.test_bit(h2),
            BloomLayout::Blocked => blocked::contains(&self.words, self.nblocks(), h1),
        }
    }

    /// Insert one integer key (convenience for tests and examples).
    pub fn insert_i64(&mut self, v: i64) {
        self.insert_hashes(
            hash::hash_i64(v, BLOOM_SEED_1),
            hash::hash_i64(v, BLOOM_SEED_2),
        );
    }

    /// Test one integer key.
    pub fn contains_i64(&self, v: i64) -> bool {
        self.contains_hashes(
            hash::hash_i64(v, BLOOM_SEED_1),
            hash::hash_i64(v, BLOOM_SEED_2),
        )
    }

    /// Insert every non-null value of a column.
    pub fn insert_column(&mut self, col: &Column) {
        let mut h1 = Vec::new();
        let mut h2 = Vec::new();
        col.hash_into(BLOOM_SEED_1, &mut h1);
        if self.needs_second_hash() {
            col.hash_into(BLOOM_SEED_2, &mut h2);
        }
        let second = |i: usize| if h2.is_empty() { 0 } else { h2[i] };
        match col.validity() {
            None => {
                for (i, &h) in h1.iter().enumerate() {
                    self.insert_hashes(h, second(i));
                }
            }
            Some(bm) => {
                for (i, &h) in h1.iter().enumerate() {
                    if bm.get(i) {
                        self.insert_hashes(h, second(i));
                    }
                }
            }
        }
    }

    /// Batch probe over pre-hashed keys: test the rows selected by `sel`
    /// (every row when `None`), appending survivors to the caller-owned
    /// `out` (cleared first). Rows `validity` marks null never survive — a
    /// NULL join key cannot match any build row. `h2` is unread for
    /// blocked-layout filters and may be empty then.
    ///
    /// This is the executor's hot path: the layout dispatch happens once
    /// per call, the per-row work is branch-light bit tests over hashes
    /// computed columnarly by the caller, and no allocation occurs once
    /// `out` has reached its steady-state capacity.
    pub fn probe_hashes_into(
        &self,
        h1: &[u64],
        h2: &[u64],
        validity: Option<&Bitmap>,
        sel: Option<&[u32]>,
        out: &mut Vec<u32>,
    ) {
        match self.layout {
            BloomLayout::Standard => {
                debug_assert_eq!(h1.len(), h2.len(), "standard layout needs both hashes");
                // `&` not `&&`: both loads issue unconditionally, so the
                // loop carries no data-dependent branch and the CPU overlaps
                // the (up to two) cache misses of consecutive keys.
                if let (None, None) = (sel, validity) {
                    // Hot shape (predicate-free scan): iterate the hash
                    // columns directly, no per-key index checks.
                    out.clear();
                    out.resize(h1.len(), 0);
                    let mut k = 0usize;
                    for (i, (&a, &b)) in h1.iter().zip(h2).enumerate() {
                        out[k] = i as u32;
                        k += (self.test_bit(a) & self.test_bit(b)) as usize;
                    }
                    out.truncate(k);
                } else {
                    probe_loop(h1.len(), validity, sel, out, |i| {
                        self.test_bit(h1[i]) & self.test_bit(h2[i])
                    });
                }
            }
            BloomLayout::Blocked => {
                let (blocks, rest) = self.words.as_chunks::<{ blocked::BLOCK_WORDS }>();
                debug_assert!(rest.is_empty());
                match (sel, validity) {
                    (None, None) => {
                        out.clear();
                        out.resize(h1.len(), 0);
                        let mut k = 0usize;
                        for (i, &h) in h1.iter().enumerate() {
                            out[k] = i as u32;
                            k += blocked::contains_blocks(blocks, h) as usize;
                        }
                        out.truncate(k);
                    }
                    (Some(sel), None) => {
                        out.clear();
                        out.resize(sel.len(), 0);
                        let mut k = 0usize;
                        for &i in sel {
                            out[k] = i;
                            k += blocked::contains_blocks(blocks, h1[i as usize]) as usize;
                        }
                        out.truncate(k);
                    }
                    _ => probe_loop(h1.len(), validity, sel, out, |i| {
                        blocked::contains_blocks(blocks, h1[i])
                    }),
                }
            }
        }
    }

    /// Probe the rows of `col` selected by `sel`, returning the surviving
    /// subset of `sel` (null keys never survive). Allocating convenience
    /// wrapper over [`BloomFilter::probe_hashes_into`]; hot paths hash the
    /// column once into reusable buffers instead.
    pub fn probe_selected(&self, col: &Column, sel: &[u32]) -> Vec<u32> {
        let mut h1 = Vec::new();
        let mut h2 = Vec::new();
        col.hash_into(BLOOM_SEED_1, &mut h1);
        if self.needs_second_hash() {
            col.hash_into(BLOOM_SEED_2, &mut h2);
        }
        let mut out = Vec::with_capacity(sel.len());
        self.probe_hashes_into(&h1, &h2, col.validity(), Some(sel), &mut out);
        out
    }

    /// Probe every row of `col`, returning the selection of survivors
    /// (without materializing an intermediate full selection vector).
    pub fn probe_all(&self, col: &Column) -> Vec<u32> {
        let mut h1 = Vec::new();
        let mut h2 = Vec::new();
        col.hash_into(BLOOM_SEED_1, &mut h1);
        if self.needs_second_hash() {
            col.hash_into(BLOOM_SEED_2, &mut h2);
        }
        let mut out = Vec::new();
        self.probe_hashes_into(&h1, &h2, col.validity(), None, &mut out);
        out
    }

    /// Bitwise union with a same-sized, same-layout filter (the merge
    /// operation used for broadcast-probe streaming, paper §3.9 strategy 2).
    ///
    /// # Panics
    /// Panics if the filters have different sizes or layouts — merging
    /// incompatible filters is a planning bug.
    pub fn union_with(&mut self, other: &BloomFilter) {
        assert_eq!(
            self.num_bits(),
            other.num_bits(),
            "cannot union differently sized Bloom filters"
        );
        assert_eq!(
            self.layout, other.layout,
            "cannot union differently laid-out Bloom filters"
        );
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
        self.inserted += other.inserted;
        self.ndv_hint = match (self.ndv_hint, other.ndv_hint) {
            (Some(a), Some(b)) => Some(a + b),
            _ => None,
        };
    }

    /// Fraction of bits set; near-1.0 means the filter is saturated and
    /// filters nothing.
    pub fn saturation(&self) -> f64 {
        let set: u64 = self.words.iter().map(|w| w.count_ones() as u64).sum();
        set as f64 / self.num_bits() as f64
    }

    /// Theoretical FPR at the current load under this filter's layout,
    /// using the distinct-key estimate when the builder recorded one
    /// (falling back to the duplicate-counting insert tally).
    pub fn estimated_fpr(&self) -> f64 {
        let n = self.ndv_hint.unwrap_or(self.inserted);
        fpr_for_layout(self.layout, self.num_bits() as f64, n as f64)
    }
}

/// Shared selection/validity iteration for batch probes; `test` is the
/// layout-specialized membership check, monomorphized per call site.
///
/// Survivors are written branch-free: every candidate index is stored and
/// the write cursor advances by the predicate — the classic selection-vector
/// compaction. Membership is data-random, so a conditional push would
/// mispredict on roughly every other key; the unconditional store costs one
/// predictable write and lets consecutive keys' filter loads overlap.
pub(crate) fn probe_loop(
    rows: usize,
    validity: Option<&Bitmap>,
    sel: Option<&[u32]>,
    out: &mut Vec<u32>,
    test: impl Fn(usize) -> bool,
) {
    let upper = sel.map_or(rows, <[u32]>::len);
    out.clear();
    out.resize(upper, 0);
    let mut k = 0usize;
    match (sel, validity) {
        (Some(sel), None) => {
            for &i in sel {
                out[k] = i;
                k += test(i as usize) as usize;
            }
        }
        (Some(sel), Some(bm)) => {
            for &i in sel {
                out[k] = i;
                k += (bm.get(i as usize) & test(i as usize)) as usize;
            }
        }
        (None, None) => {
            for i in 0..rows as u32 {
                out[k] = i;
                k += test(i as usize) as usize;
            }
        }
        (None, Some(bm)) => {
            for i in 0..rows as u32 {
                out[k] = i;
                k += (bm.get(i as usize) & test(i as usize)) as usize;
            }
        }
    }
    out.truncate(k);
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfq_storage::Bitmap;

    #[test]
    fn no_false_negatives() {
        for layout in BloomLayout::ALL {
            let mut f = BloomFilter::with_expected_ndv_layout(1000, layout);
            for v in 0..1000i64 {
                f.insert_i64(v);
            }
            for v in 0..1000i64 {
                assert!(f.contains_i64(v), "false negative for {v} ({layout})");
            }
        }
    }

    #[test]
    fn false_positive_rate_in_expected_band() {
        for layout in BloomLayout::ALL {
            let n = 10_000i64;
            let mut f = BloomFilter::with_expected_ndv_layout(n as usize, layout);
            for v in 0..n {
                f.insert_i64(v);
            }
            let mut fp = 0usize;
            let probes = 100_000i64;
            for v in n..n + probes {
                if f.contains_i64(v) {
                    fp += 1;
                }
            }
            let observed = fp as f64 / probes as f64;
            let theoretical = f.estimated_fpr();
            assert!(
                observed < theoretical * 2.0 + 0.01,
                "observed fpr {observed} vs theoretical {theoretical} ({layout})"
            );
        }
    }

    #[test]
    fn column_insert_and_probe() {
        for layout in BloomLayout::ALL {
            let build = Column::Int64(vec![1, 2, 3, 4, 5], None);
            let mut f = BloomFilter::with_expected_ndv_layout(5, layout);
            f.insert_column(&build);
            let probe = Column::Int64(vec![3, 99, 1, 77_777], None);
            let sel = f.probe_all(&probe);
            // 3 and 1 must survive; the others may only survive as false
            // positives (essentially impossible at this load).
            assert!(sel.contains(&0) && sel.contains(&2));
            assert!(sel.len() <= 3);
        }
    }

    #[test]
    fn null_keys_are_filtered_out() {
        for layout in BloomLayout::ALL {
            let build = Column::Int64(vec![1, 2], None);
            let mut f = BloomFilter::with_expected_ndv_layout(2, layout);
            f.insert_column(&build);
            let probe = Column::Int64(vec![1, 1], Some(Bitmap::from_bools([true, false])));
            assert_eq!(f.probe_all(&probe), vec![0]);
        }
    }

    #[test]
    fn null_build_keys_not_inserted() {
        let build = Column::Int64(vec![7, 8], Some(Bitmap::from_bools([true, false])));
        let mut f = BloomFilter::with_expected_ndv(16);
        f.insert_column(&build);
        assert_eq!(f.inserted_keys(), 1);
        assert!(f.contains_i64(7));
    }

    #[test]
    fn probe_selected_respects_input_selection() {
        for layout in BloomLayout::ALL {
            let build = Column::Int64(vec![10, 20], None);
            let mut f = BloomFilter::with_expected_ndv_layout(2, layout);
            f.insert_column(&build);
            let probe = Column::Int64(vec![10, 20, 10, 20], None);
            let sel = f.probe_selected(&probe, &[1, 3]);
            assert_eq!(sel, vec![1, 3]);
        }
    }

    #[test]
    fn batch_probe_matches_scalar_probe() {
        for layout in BloomLayout::ALL {
            let mut f = BloomFilter::with_bits_layout(4096, layout);
            for v in (0..512i64).step_by(3) {
                f.insert_i64(v);
            }
            let vals: Vec<i64> = (0..512).collect();
            let col = Column::Int64(vals.clone(), None);
            let batch = f.probe_all(&col);
            let scalar: Vec<u32> = (0..vals.len() as u32)
                .filter(|&i| f.contains_i64(vals[i as usize]))
                .collect();
            assert_eq!(batch, scalar, "batch/scalar divergence ({layout})");
        }
    }

    #[test]
    fn union_or_bits_together() {
        for layout in BloomLayout::ALL {
            let mut a = BloomFilter::with_bits_layout(1024, layout);
            let mut b = BloomFilter::with_bits_layout(1024, layout);
            a.insert_i64(1);
            b.insert_i64(2);
            assert!(!a.contains_i64(2));
            a.union_with(&b);
            assert!(a.contains_i64(1) && a.contains_i64(2));
            assert_eq!(a.inserted_keys(), 2);
        }
    }

    #[test]
    #[should_panic(expected = "differently sized")]
    fn union_size_mismatch_panics() {
        let mut a = BloomFilter::with_bits(1024);
        let b = BloomFilter::with_bits(2048);
        a.union_with(&b);
    }

    #[test]
    #[should_panic(expected = "differently laid-out")]
    fn union_layout_mismatch_panics() {
        let mut a = BloomFilter::with_bits_layout(1024, BloomLayout::Standard);
        let b = BloomFilter::with_bits_layout(1024, BloomLayout::Blocked);
        a.union_with(&b);
    }

    #[test]
    fn saturation_grows_with_load() {
        let mut f = BloomFilter::with_bits(512);
        assert_eq!(f.saturation(), 0.0);
        for v in 0..64 {
            f.insert_i64(v);
        }
        let s1 = f.saturation();
        for v in 64..512 {
            f.insert_i64(v);
        }
        assert!(f.saturation() > s1);
        assert!(f.saturation() <= 1.0);
    }

    #[test]
    fn ndv_hint_drives_estimated_fpr() {
        let mut f = BloomFilter::with_expected_ndv(1000);
        // 10 distinct keys inserted 100x each: `inserted` says 1000.
        for _ in 0..100 {
            for v in 0..10i64 {
                f.insert_i64(v);
            }
        }
        let duplicate_counting = f.estimated_fpr();
        f.set_ndv_hint(10);
        assert_eq!(f.ndv_hint(), Some(10));
        let distinct = f.estimated_fpr();
        assert!(
            distinct < duplicate_counting,
            "hint must shrink the reported load: {distinct} vs {duplicate_counting}"
        );
        // The hinted FPR is the sizing math's number for 10 keys.
        let expect = crate::math::false_positive_rate(f.num_bits() as f64, 2.0, 10.0);
        assert!((distinct - expect).abs() < 1e-12);
    }

    #[test]
    fn string_keys() {
        for layout in BloomLayout::ALL {
            let build: bfq_storage::StrData = ["FRANCE", "GERMANY"]
                .iter()
                .map(|s| s.to_string())
                .collect();
            let mut f = BloomFilter::with_expected_ndv_layout(4, layout);
            f.insert_column(&Column::Utf8(build, None));
            let probe: bfq_storage::StrData =
                ["GERMANY", "JAPAN"].iter().map(|s| s.to_string()).collect();
            let sel = f.probe_all(&Column::Utf8(probe, None));
            assert!(sel.contains(&0));
        }
    }
}
