//! The four SMP streaming strategies of paper §3.9.
//!
//! How a Bloom filter is built and applied depends on how the owning hash
//! join streams its inputs across threads. [`StreamingStrategy`] names the
//! four cases; [`build_filter`] turns per-thread build-side key columns into
//! the [`RuntimeFilter`] the apply-side scan will use.

use bfq_storage::Column;

use crate::filter::{BloomFilter, BLOOM_SEED_1, BLOOM_SEED_2};
use crate::hub::{KeyHashes, RuntimeFilter};
use crate::math::BloomLayout;
use crate::partitioned::PartitionedBloomFilter;
use crate::summary::KeySummary;

/// Build sides with at most this many distinct keys ship their exact key
/// hashes with the filter, so scans can probe per-chunk Bloom indexes and
/// skip whole chunks (`bfq-index`). Probing ≤ 1024 keys per chunk is far
/// cheaper than row-level work on an 8192-row chunk. Larger numeric builds
/// fall back to a merged per-partition [`KeySummary`] so chunk skipping
/// does not cliff to zero past this limit.
pub const SMALL_KEY_LIMIT: usize = 1024;

/// Build-key metadata that travels with a runtime filter: numeric-axis
/// min/max of the non-null keys, the deduplicated hashes of every key
/// (small build sides), or the occupancy summary (large numeric build
/// sides).
type KeyInfo = (Option<(f64, f64)>, Option<KeyHashes>, Option<KeySummary>);

/// Compute the [`KeyInfo`] for the key columns a filter was built from.
/// `needs_h2` says whether the built filter consumes the second seed hash
/// ([`BloomFilter::needs_second_hash`]): blocked-layout filters do not, so
/// their key hashes ship first-hash-only — skipping a whole seed-2 hash
/// pass over the build keys and halving the shipped metadata.
fn key_info(thread_keys: &[Column], needs_h2: bool) -> KeyInfo {
    let mut bounds: Option<(f64, f64)> = None;
    for col in thread_keys {
        if let Some((lo, hi)) = col.min_max_axis() {
            bounds = Some(match bounds {
                None => (lo, hi),
                Some((a, b)) => (a.min(lo), b.max(hi)),
            });
        }
    }
    let total_rows: usize = thread_keys.iter().map(|c| c.len()).sum();
    let hashes = (total_rows <= 4 * SMALL_KEY_LIMIT).then(|| {
        if needs_h2 {
            let mut out = Vec::new();
            let (mut h1, mut h2) = (Vec::new(), Vec::new());
            for col in thread_keys {
                col.hash_into(BLOOM_SEED_1, &mut h1);
                col.hash_into(BLOOM_SEED_2, &mut h2);
                for i in 0..col.len() {
                    if !col.is_null(i) {
                        out.push((h1[i], h2[i]));
                    }
                }
            }
            out.sort_unstable();
            out.dedup();
            KeyHashes::Pairs(out)
        } else {
            let mut out = Vec::new();
            let mut h1 = Vec::new();
            for col in thread_keys {
                col.hash_into(BLOOM_SEED_1, &mut h1);
                for (i, &h) in h1.iter().enumerate().take(col.len()) {
                    if !col.is_null(i) {
                        out.push(h);
                    }
                }
            }
            out.sort_unstable();
            out.dedup();
            KeyHashes::FirstOnly(out)
        }
    });
    let hashes = hashes.filter(|h| h.len() <= SMALL_KEY_LIMIT);
    // The summary is the large-build fallback: only built when exact hashes
    // were dropped (small builds already carry strictly stronger evidence).
    let summary = if hashes.is_none() && bounds.is_some() {
        KeySummary::from_partitions(thread_keys)
    } else {
        None
    };
    (bounds, hashes, summary)
}

/// How the hash join that owns a Bloom filter streams its inputs (paper §3.9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamingStrategy {
    /// Build side broadcast to every thread: the `n` hash tables are
    /// redundant, so build **one** filter from one copy (§3.9 case 1).
    BroadcastBuild,
    /// Probe side broadcast: the build side's `n` threads hold disjoint key
    /// subsets, so build `n` partials and **merge** them by bit-vector union
    /// (§3.9 case 2).
    BroadcastProbe,
    /// Partition join where the apply-side relation is *not* partitioned the
    /// same way: build `n` partials, probe by **distributed lookup** on the
    /// partitioning column (§3.9 case 3).
    PartitionUnaligned,
    /// Partition join with aligned partitioning: partial filter `i` applies
    /// directly to apply-side partition `i` (§3.9 case 4).
    PartitionAligned,
}

impl StreamingStrategy {
    /// Human-readable label used in EXPLAIN output.
    pub fn label(self) -> &'static str {
        match self {
            StreamingStrategy::BroadcastBuild => "broadcast-build",
            StreamingStrategy::BroadcastProbe => "broadcast-probe",
            StreamingStrategy::PartitionUnaligned => "partition-unaligned",
            StreamingStrategy::PartitionAligned => "partition-aligned",
        }
    }
}

/// Build the runtime filter for a join given per-thread build-side key
/// columns (`thread_keys[i]` = the join-key column seen by build thread `i`)
/// under the session's bit-placement `layout`.
///
/// `expected_ndv` is the planner's upper-bound distinct estimate — the same
/// number its cost model used to size the filter (paper §3.5). It (refined
/// to the exact distinct count when a small build ships its key hashes) is
/// recorded as the filter's NDV hint, so the FPR the filter reports matches
/// the math the optimizer used rather than a duplicate-counting tally.
pub fn build_filter(
    strategy: StreamingStrategy,
    thread_keys: &[Column],
    expected_ndv: usize,
    layout: BloomLayout,
) -> RuntimeFilter {
    assert!(!thread_keys.is_empty(), "no build-side threads");
    match strategy {
        StreamingStrategy::BroadcastBuild => {
            // All threads hold identical data; use thread 0's copy.
            let mut f = BloomFilter::with_expected_ndv_layout(expected_ndv, layout);
            f.insert_column(&thread_keys[0]);
            let (bounds, hashes, summary) = key_info(&thread_keys[..1], f.needs_second_hash());
            f.set_ndv_hint(ndv_hint(&hashes, expected_ndv));
            RuntimeFilter::single(f).with_key_info(bounds, hashes, summary)
        }
        StreamingStrategy::BroadcastProbe => {
            // Disjoint per-thread subsets: build same-sized partials, merge.
            let bits =
                crate::math::bits_for_ndv(expected_ndv.max(1), crate::math::DEFAULT_BITS_PER_KEY);
            let mut merged = BloomFilter::with_bits_layout(bits, layout);
            for keys in thread_keys {
                let mut partial = BloomFilter::with_bits_layout(bits, layout);
                partial.insert_column(keys);
                merged.union_with(&partial);
            }
            let (bounds, hashes, summary) = key_info(thread_keys, merged.needs_second_hash());
            merged.set_ndv_hint(ndv_hint(&hashes, expected_ndv));
            RuntimeFilter::single(merged).with_key_info(bounds, hashes, summary)
        }
        StreamingStrategy::PartitionUnaligned | StreamingStrategy::PartitionAligned => {
            let n = thread_keys.len();
            let mut pf = PartitionedBloomFilter::new_layout(n, expected_ndv, layout);
            for keys in thread_keys {
                // Keys within a partition join partition still route by key
                // hash so partial `i` holds exactly partition `i`'s keys.
                pf.insert_column_routed(keys);
            }
            let (bounds, hashes, summary) = key_info(thread_keys, pf.needs_second_hash());
            // Each partial holds an even share of the distinct keys.
            let per_part = ndv_hint(&hashes, expected_ndv).div_ceil(n as u64).max(1);
            for p in 0..n {
                pf.part_mut(p).set_ndv_hint(per_part);
            }
            RuntimeFilter::partitioned(pf).with_key_info(bounds, hashes, summary)
        }
    }
}

/// The distinct-key count a filter should report FPR against: the exact
/// deduplicated hash count when a small build shipped it, else the
/// planner's estimate the filter was sized for.
fn ndv_hint(hashes: &Option<KeyHashes>, expected_ndv: usize) -> u64 {
    hashes
        .as_ref()
        .map(|h| h.len() as u64)
        .unwrap_or(expected_ndv as u64)
        .max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_col(vals: &[i64]) -> Column {
        Column::Int64(vals.to_vec(), None)
    }

    fn survivors(f: &RuntimeFilter, probe: &Column) -> Vec<u32> {
        let all: Vec<u32> = (0..probe.len() as u32).collect();
        f.probe(probe, &all)
    }

    #[test]
    fn broadcast_build_uses_single_copy() {
        let keys = int_col(&[1, 2, 3]);
        // Three redundant copies (what a broadcast build side looks like).
        let f = build_filter(
            StreamingStrategy::BroadcastBuild,
            &[keys.clone(), keys.clone(), keys.clone()],
            3,
            BloomLayout::Standard,
        );
        match f.core() {
            crate::hub::FilterCore::Single(bf) => assert_eq!(bf.inserted_keys(), 3),
            _ => panic!("expected single filter"),
        }
        let s = survivors(&f, &int_col(&[2, 999]));
        assert!(s.contains(&0));
        // Key metadata: bounds span the inserted copy, hashes are deduped.
        assert_eq!(f.key_bounds(), Some((1.0, 3.0)));
        assert_eq!(f.key_hashes().map(|h| h.len()), Some(3));
    }

    #[test]
    fn key_info_bounds_and_small_hashes() {
        let f = build_filter(
            StreamingStrategy::BroadcastProbe,
            &[int_col(&[5, 10]), int_col(&[-3, 10])],
            4,
            BloomLayout::Standard,
        );
        assert_eq!(f.key_bounds(), Some((-3.0, 10.0)));
        // 3 distinct keys after dedup across threads.
        assert_eq!(f.key_hashes().map(|h| h.len()), Some(3));
    }

    #[test]
    fn key_hashes_dropped_for_large_build_sides() {
        let big: Vec<i64> = (0..(4 * SMALL_KEY_LIMIT as i64) + 1).collect();
        let f = build_filter(
            StreamingStrategy::BroadcastProbe,
            &[int_col(&big)],
            big.len(),
            BloomLayout::Standard,
        );
        assert!(f.key_hashes().is_none());
        assert_eq!(f.key_bounds(), Some((0.0, big[big.len() - 1] as f64)));
        // The large build carries the summary fallback instead.
        let summary = f.key_summary().expect("summary for large build");
        assert!(summary.overlaps_range(10.0, 20.0));
    }

    #[test]
    fn small_builds_skip_the_summary_large_clustered_builds_use_it() {
        let small = build_filter(
            StreamingStrategy::BroadcastBuild,
            &[int_col(&[1, 2])],
            2,
            BloomLayout::Standard,
        );
        assert!(
            small.key_summary().is_none(),
            "hashes are stronger evidence"
        );
        // Two key clusters far apart: summary proves the gap empty even
        // though the global bounds cover it.
        let mut keys: Vec<i64> = (0..3000).collect();
        keys.extend(1_000_000..1_003_000);
        let cols: Vec<Column> = keys.chunks(1500).map(int_col).collect();
        let f = build_filter(
            StreamingStrategy::PartitionUnaligned,
            &cols,
            keys.len(),
            BloomLayout::Standard,
        );
        assert!(f.key_hashes().is_none());
        let summary = f.key_summary().expect("summary for large build");
        assert!(summary.overlaps_range(100.0, 200.0));
        assert!(!summary.overlaps_range(200_000.0, 800_000.0));
    }

    #[test]
    fn string_keys_have_no_bounds_but_ship_hashes() {
        let keys: bfq_storage::StrData = ["FRANCE", "GERMANY"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = build_filter(
            StreamingStrategy::BroadcastBuild,
            &[Column::Utf8(keys, None)],
            2,
            BloomLayout::Standard,
        );
        assert!(f.key_bounds().is_none());
        assert_eq!(f.key_hashes().map(|h| h.len()), Some(2));
    }

    #[test]
    fn blocked_layout_ships_first_hash_only() {
        let blocked = build_filter(
            StreamingStrategy::BroadcastBuild,
            &[int_col(&[1, 2, 3])],
            3,
            BloomLayout::Blocked,
        );
        assert!(
            matches!(blocked.key_hashes(), Some(KeyHashes::FirstOnly(h)) if h.len() == 3),
            "blocked filters never consume h2, so only h1 should ship"
        );
        let standard = build_filter(
            StreamingStrategy::BroadcastBuild,
            &[int_col(&[1, 2, 3])],
            3,
            BloomLayout::Standard,
        );
        assert!(matches!(standard.key_hashes(), Some(KeyHashes::Pairs(h)) if h.len() == 3));
        // Partitioned strategies follow the same rule.
        let part = build_filter(
            StreamingStrategy::PartitionAligned,
            &[int_col(&[1, 2]), int_col(&[3, 4])],
            4,
            BloomLayout::Blocked,
        );
        assert!(matches!(part.key_hashes(), Some(KeyHashes::FirstOnly(h)) if h.len() == 4));
    }

    #[test]
    fn broadcast_probe_merges_disjoint_partials() {
        let f = build_filter(
            StreamingStrategy::BroadcastProbe,
            &[int_col(&[1, 2]), int_col(&[100, 200]), int_col(&[5000])],
            5,
            BloomLayout::Standard,
        );
        let s = survivors(&f, &int_col(&[1, 200, 5000, 777_777]));
        assert!(s.contains(&0) && s.contains(&1) && s.contains(&2));
    }

    #[test]
    fn partitioned_strategies_probe_correctly() {
        for strat in [
            StreamingStrategy::PartitionUnaligned,
            StreamingStrategy::PartitionAligned,
        ] {
            let keys: Vec<i64> = (0..2000).collect();
            // Split keys across 4 "threads" arbitrarily.
            let cols: Vec<Column> = keys.chunks(500).map(int_col).collect();
            let f = build_filter(strat, &cols, keys.len(), BloomLayout::Standard);
            let s = survivors(&f, &int_col(&keys));
            assert_eq!(s.len(), keys.len(), "{strat:?} lost rows");
            let miss: Vec<i64> = (1_000_000..1_000_500).collect();
            let misses = survivors(&f, &int_col(&miss));
            assert!(misses.len() < 100, "{strat:?} too many false positives");
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(StreamingStrategy::BroadcastBuild.label(), "broadcast-build");
        assert_eq!(
            StreamingStrategy::PartitionAligned.label(),
            "partition-aligned"
        );
    }
}
