//! The four SMP streaming strategies of paper §3.9.
//!
//! How a Bloom filter is built and applied depends on how the owning hash
//! join streams its inputs across threads. [`StreamingStrategy`] names the
//! four cases; [`build_filter`] turns per-thread build-side key columns into
//! the [`RuntimeFilter`] the apply-side scan will use.

use bfq_storage::Column;

use crate::filter::BloomFilter;
use crate::hub::RuntimeFilter;
use crate::partitioned::PartitionedBloomFilter;

/// How the hash join that owns a Bloom filter streams its inputs (paper §3.9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamingStrategy {
    /// Build side broadcast to every thread: the `n` hash tables are
    /// redundant, so build **one** filter from one copy (§3.9 case 1).
    BroadcastBuild,
    /// Probe side broadcast: the build side's `n` threads hold disjoint key
    /// subsets, so build `n` partials and **merge** them by bit-vector union
    /// (§3.9 case 2).
    BroadcastProbe,
    /// Partition join where the apply-side relation is *not* partitioned the
    /// same way: build `n` partials, probe by **distributed lookup** on the
    /// partitioning column (§3.9 case 3).
    PartitionUnaligned,
    /// Partition join with aligned partitioning: partial filter `i` applies
    /// directly to apply-side partition `i` (§3.9 case 4).
    PartitionAligned,
}

impl StreamingStrategy {
    /// Human-readable label used in EXPLAIN output.
    pub fn label(self) -> &'static str {
        match self {
            StreamingStrategy::BroadcastBuild => "broadcast-build",
            StreamingStrategy::BroadcastProbe => "broadcast-probe",
            StreamingStrategy::PartitionUnaligned => "partition-unaligned",
            StreamingStrategy::PartitionAligned => "partition-aligned",
        }
    }
}

/// Build the runtime filter for a join given per-thread build-side key
/// columns (`thread_keys[i]` = the join-key column seen by build thread `i`).
///
/// `expected_ndv` is the planner's upper-bound distinct estimate — the same
/// number its cost model used to size the filter (paper §3.5).
pub fn build_filter(
    strategy: StreamingStrategy,
    thread_keys: &[Column],
    expected_ndv: usize,
) -> RuntimeFilter {
    assert!(!thread_keys.is_empty(), "no build-side threads");
    match strategy {
        StreamingStrategy::BroadcastBuild => {
            // All threads hold identical data; use thread 0's copy.
            let mut f = BloomFilter::with_expected_ndv(expected_ndv);
            f.insert_column(&thread_keys[0]);
            RuntimeFilter::Single(f)
        }
        StreamingStrategy::BroadcastProbe => {
            // Disjoint per-thread subsets: build same-sized partials, merge.
            let bits =
                crate::math::bits_for_ndv(expected_ndv.max(1), crate::math::DEFAULT_BITS_PER_KEY);
            let mut merged = BloomFilter::with_bits(bits);
            for keys in thread_keys {
                let mut partial = BloomFilter::with_bits(bits);
                partial.insert_column(keys);
                merged.union_with(&partial);
            }
            RuntimeFilter::Single(merged)
        }
        StreamingStrategy::PartitionUnaligned | StreamingStrategy::PartitionAligned => {
            let n = thread_keys.len();
            let mut pf = PartitionedBloomFilter::new(n, expected_ndv);
            for keys in thread_keys {
                // Keys within a partition join partition still route by key
                // hash so partial `i` holds exactly partition `i`'s keys.
                pf.insert_column_routed(keys);
            }
            RuntimeFilter::Partitioned(pf)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_col(vals: &[i64]) -> Column {
        Column::Int64(vals.to_vec(), None)
    }

    fn survivors(f: &RuntimeFilter, probe: &Column) -> Vec<u32> {
        let all: Vec<u32> = (0..probe.len() as u32).collect();
        f.probe(probe, &all)
    }

    #[test]
    fn broadcast_build_uses_single_copy() {
        let keys = int_col(&[1, 2, 3]);
        // Three redundant copies (what a broadcast build side looks like).
        let f = build_filter(
            StreamingStrategy::BroadcastBuild,
            &[keys.clone(), keys.clone(), keys.clone()],
            3,
        );
        match &f {
            RuntimeFilter::Single(bf) => assert_eq!(bf.inserted_keys(), 3),
            _ => panic!("expected single filter"),
        }
        let s = survivors(&f, &int_col(&[2, 999]));
        assert!(s.contains(&0));
    }

    #[test]
    fn broadcast_probe_merges_disjoint_partials() {
        let f = build_filter(
            StreamingStrategy::BroadcastProbe,
            &[int_col(&[1, 2]), int_col(&[100, 200]), int_col(&[5000])],
            5,
        );
        let s = survivors(&f, &int_col(&[1, 200, 5000, 777_777]));
        assert!(s.contains(&0) && s.contains(&1) && s.contains(&2));
    }

    #[test]
    fn partitioned_strategies_probe_correctly() {
        for strat in [
            StreamingStrategy::PartitionUnaligned,
            StreamingStrategy::PartitionAligned,
        ] {
            let keys: Vec<i64> = (0..2000).collect();
            // Split keys across 4 "threads" arbitrarily.
            let cols: Vec<Column> = keys.chunks(500).map(int_col).collect();
            let f = build_filter(strat, &cols, keys.len());
            let s = survivors(&f, &int_col(&keys));
            assert_eq!(s.len(), keys.len(), "{strat:?} lost rows");
            let miss: Vec<i64> = (1_000_000..1_000_500).collect();
            let misses = survivors(&f, &int_col(&miss));
            assert!(misses.len() < 100, "{strat:?} too many false positives");
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(StreamingStrategy::BroadcastBuild.label(), "broadcast-build");
        assert_eq!(
            StreamingStrategy::PartitionAligned.label(),
            "partition-aligned"
        );
    }
}
