//! Partitioned Bloom filters for partitioned hash joins (paper §3.9,
//! strategies 3 and 4).
//!
//! A partition join builds `n` partial hash joins, one per partition of the
//! build side; we build one partial Bloom filter per partition. On the apply
//! side:
//! * **aligned** (§3.9 case 4): partition `i` of the scanned relation probes
//!   partial filter `i` directly;
//! * **unaligned** (§3.9 case 3): each row routes to a partial filter by
//!   hashing its key with the partitioning hash ("distributed lookup"), or
//!   the partials are merged into one filter when the partition column is
//!   unavailable.

use bfq_common::hash::hash_u64;
use bfq_storage::{Bitmap, Column};

use crate::filter::BloomFilter;
use crate::math::BloomLayout;

/// Seed of the *partitioning* hash — deliberately distinct from the two
/// filter seeds so partition routing is independent of bit placement.
pub const PARTITION_SEED: u64 = 0x2545_f491_4f6c_dd1d;

/// Route a key hash to one of `n` partitions.
#[inline]
pub fn partition_of(key_hash: u64, n: usize) -> usize {
    // Multiply-shift on a re-mixed hash avoids modulo bias and correlation
    // with the filter's bit-index bits.
    (hash_u64(key_hash, PARTITION_SEED) % n as u64) as usize
}

/// `n` partial Bloom filters, one per hash-join partition.
#[derive(Debug, Clone)]
pub struct PartitionedBloomFilter {
    parts: Vec<BloomFilter>,
}

impl PartitionedBloomFilter {
    /// Create `partitions` standard-layout partial filters, each sized for
    /// an even share of `expected_ndv` keys.
    pub fn new(partitions: usize, expected_ndv: usize) -> Self {
        Self::new_layout(partitions, expected_ndv, BloomLayout::Standard)
    }

    /// Create `partitions` partial filters under `layout`, each sized for
    /// an even share of `expected_ndv` keys.
    pub fn new_layout(partitions: usize, expected_ndv: usize, layout: BloomLayout) -> Self {
        assert!(partitions > 0, "need at least one partition");
        let per_part = expected_ndv.div_ceil(partitions);
        PartitionedBloomFilter {
            parts: (0..partitions)
                .map(|_| BloomFilter::with_expected_ndv_layout(per_part, layout))
                .collect(),
        }
    }

    /// The layout shared by every partial filter.
    pub fn layout(&self) -> BloomLayout {
        self.parts[0].layout()
    }

    /// Whether probes consume the second key hash (see
    /// [`BloomFilter::needs_second_hash`]).
    pub fn needs_second_hash(&self) -> bool {
        self.parts[0].needs_second_hash()
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.parts.len()
    }

    /// Access a partial filter.
    pub fn part(&self, i: usize) -> &BloomFilter {
        &self.parts[i]
    }

    /// Mutable access to a partial filter (the build side of partition `i`
    /// inserts its keys here).
    pub fn part_mut(&mut self, i: usize) -> &mut BloomFilter {
        &mut self.parts[i]
    }

    /// Insert a column whose rows are already partition-local (aligned
    /// build): all keys go to partition `part`.
    pub fn insert_column_aligned(&mut self, part: usize, col: &Column) {
        self.parts[part].insert_column(col);
    }

    /// Insert a column routing each row to its partition by key hash
    /// (build side not yet partitioned).
    pub fn insert_column_routed(&mut self, col: &Column) {
        let mut h1 = Vec::new();
        let mut h2 = Vec::new();
        col.hash_into(crate::filter::BLOOM_SEED_1, &mut h1);
        if self.needs_second_hash() {
            col.hash_into(crate::filter::BLOOM_SEED_2, &mut h2);
        }
        let second = |i: usize| if h2.is_empty() { 0 } else { h2[i] };
        let n = self.parts.len();
        for (i, &h) in h1.iter().enumerate() {
            if !col.is_null(i) {
                let p = partition_of(h, n);
                self.parts[p].insert_hashes(h, second(i));
            }
        }
    }

    /// Aligned probe (§3.9 case 4): rows of `col` belong to partition `part`.
    pub fn probe_aligned(&self, part: usize, col: &Column, sel: &[u32]) -> Vec<u32> {
        self.parts[part].probe_selected(col, sel)
    }

    /// Batched unaligned probe over pre-hashed keys: rows selected by `sel`
    /// (all rows when `None`) route to their partial filter by the
    /// partitioning hash; survivors are appended to the caller-owned `out`
    /// (cleared first). `h2` is unread under the blocked layout.
    pub fn probe_routed_hashes_into(
        &self,
        h1: &[u64],
        h2: &[u64],
        validity: Option<&Bitmap>,
        sel: Option<&[u32]>,
        out: &mut Vec<u32>,
    ) {
        let n = self.parts.len();
        let second_hash = self.needs_second_hash();
        crate::filter::probe_loop(h1.len(), validity, sel, out, |i| {
            let p = partition_of(h1[i], n);
            let h2i = if second_hash { h2[i] } else { 0 };
            self.parts[p].contains_hashes(h1[i], h2i)
        });
    }

    /// Unaligned probe with distributed lookup (§3.9 case 3): each row picks
    /// its partial filter via the partitioning hash of its own key.
    /// Allocating wrapper over [`PartitionedBloomFilter::probe_routed_hashes_into`].
    pub fn probe_routed(&self, col: &Column, sel: &[u32]) -> Vec<u32> {
        let mut h1 = Vec::new();
        let mut h2 = Vec::new();
        col.hash_into(crate::filter::BLOOM_SEED_1, &mut h1);
        if self.needs_second_hash() {
            col.hash_into(crate::filter::BLOOM_SEED_2, &mut h2);
        }
        let mut out = Vec::with_capacity(sel.len());
        self.probe_routed_hashes_into(&h1, &h2, col.validity(), Some(sel), &mut out);
        out
    }

    /// Merge all partials into one filter by bit-vector union (the fallback
    /// when the partitioning column is unavailable on the apply side).
    ///
    /// Partial filters are same-sized by construction, so the union is
    /// well-defined.
    pub fn merge(&self) -> BloomFilter {
        let mut merged = self.parts[0].clone();
        for p in &self.parts[1..] {
            merged.union_with(p);
        }
        merged
    }

    /// Total memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.parts.iter().map(|p| p.size_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_col(vals: &[i64]) -> Column {
        Column::Int64(vals.to_vec(), None)
    }

    #[test]
    fn routed_insert_then_routed_probe_has_no_false_negatives() {
        let keys: Vec<i64> = (0..5000).collect();
        let mut pf = PartitionedBloomFilter::new(8, keys.len());
        pf.insert_column_routed(&int_col(&keys));
        let probe = int_col(&keys);
        let all: Vec<u32> = (0..keys.len() as u32).collect();
        let survivors = pf.probe_routed(&probe, &all);
        assert_eq!(survivors.len(), keys.len(), "lost rows in routed probe");
    }

    #[test]
    fn routed_probe_filters_misses() {
        let mut pf = PartitionedBloomFilter::new(4, 1000);
        pf.insert_column_routed(&int_col(&(0..1000).collect::<Vec<_>>()));
        let misses: Vec<i64> = (100_000..101_000).collect();
        let probe = int_col(&misses);
        let all: Vec<u32> = (0..misses.len() as u32).collect();
        let survivors = pf.probe_routed(&probe, &all);
        assert!(
            survivors.len() < misses.len() / 5,
            "too many false positives: {}",
            survivors.len()
        );
    }

    #[test]
    fn aligned_build_and_probe() {
        let mut pf = PartitionedBloomFilter::new(2, 100);
        pf.insert_column_aligned(0, &int_col(&[1, 2, 3]));
        pf.insert_column_aligned(1, &int_col(&[100, 200]));
        let probe0 = int_col(&[1, 100]);
        // Partition 0 only knows 1,2,3.
        let s = pf.probe_aligned(0, &probe0, &[0, 1]);
        assert!(s.contains(&0));
        assert!(!s.contains(&1) || pf.part(0).estimated_fpr() > 0.0);
    }

    #[test]
    fn merge_unions_all_partitions() {
        let mut pf = PartitionedBloomFilter::new(4, 100);
        pf.insert_column_routed(&int_col(&(0..100).collect::<Vec<_>>()));
        let merged = pf.merge();
        for v in 0..100 {
            assert!(merged.contains_i64(v));
        }
        assert_eq!(merged.inserted_keys(), 100);
    }

    #[test]
    fn partition_routing_is_deterministic_and_spread() {
        let n = 8;
        let mut counts = vec![0usize; n];
        for k in 0..8000u64 {
            let h = bfq_common::hash::hash_u64(k, crate::filter::BLOOM_SEED_1);
            counts[partition_of(h, n)] += 1;
        }
        for &c in &counts {
            assert!(c > 500, "partition badly balanced: {counts:?}");
        }
    }

    #[test]
    fn size_accounting() {
        let pf = PartitionedBloomFilter::new(4, 4096);
        assert_eq!(pf.partitions(), 4);
        assert!(pf.size_bytes() >= 4096); // 4096 keys * 8 bits / 8 = 4096 B
    }
}
