//! Bloom filter substrate.
//!
//! Everything the paper's runtime needs (§3.5, §3.9):
//! * [`BloomFilter`] — a bit-array filter with **two** hash functions (the
//!   paper fixes k = 2 "for performance reasons"), sized from an upper-bound
//!   estimate of the build side's distinct values;
//! * [`math`] — false-positive-rate and sizing formulas shared with the cost
//!   model, including the [`math::BloomLayout`] knob and the blocked-layout
//!   FPR correction;
//! * [`blocked`] — the cache-line-blocked bit placement: both probe bits
//!   confined to one 512-bit block so a probe costs a single cache miss;
//! * [`PartitionedBloomFilter`] — per-partition partial filters for
//!   partitioned hash joins, with bit-vector union merging;
//! * [`strategy`] — the four SMP streaming strategies of §3.9 (broadcast
//!   build/probe, partition aligned/unaligned);
//! * [`hub::FilterHub`] — the runtime rendezvous between the hash join that
//!   builds a filter and the scan that applies it ("table scans wait for all
//!   Bloom filter partitions to become available", §3.9);
//! * [`summary::KeySummary`] — compact per-partition build-key occupancy
//!   bitmaps that keep chunk-level skipping alive for build sides too large
//!   to ship exact key hashes.

pub mod blocked;
pub mod filter;
pub mod hub;
pub mod math;
pub mod partitioned;
pub mod strategy;
pub mod summary;

pub use filter::{BloomFilter, BLOOM_SEED_1, BLOOM_SEED_2};
pub use hub::{FilterCore, FilterHub, KeyHashes, ProbeScratch, RuntimeFilter};
pub use math::{
    bits_for_ndv, blocked_fpr, default_fpr_layout, false_positive_rate, fpr_for_layout,
    BloomLayout, BLOCK_BITS, DEFAULT_BITS_PER_KEY, NUM_HASHES,
};
pub use partitioned::PartitionedBloomFilter;
pub use strategy::StreamingStrategy;
pub use summary::{KeySummary, SUMMARY_BUCKETS};
