//! Compact build-key summaries for chunk-level skipping on *large* builds.
//!
//! Small build sides (≤ [`crate::strategy::SMALL_KEY_LIMIT`] distinct keys)
//! ship their exact key hashes with the [`crate::RuntimeFilter`], so scans
//! can probe per-chunk Bloom indexes and skip whole chunks. Above that
//! limit exact hashes are dropped — which used to silently disable chunk
//! skipping for big joins. A [`KeySummary`] is the fallback: each build
//! partition marks the value-range buckets its keys occupy, the partition
//! summaries are unioned, and a scan skips any chunk whose zone-map range
//! touches no occupied bucket. It is a zone-style proof (no false skips):
//! an unoccupied bucket range contains no build key, so no row in a chunk
//! confined to that range can survive the join filter.

use bfq_storage::Column;

/// Number of value-range buckets in a summary. 4096 bits = 512 bytes — a
/// rounding error next to the Bloom filter it rides along with, yet enough
/// that a build side covering 1/8 of a clustered fact table's key range
/// leaves 7/8 of the buckets provably empty.
pub const SUMMARY_BUCKETS: usize = 4096;

/// An occupancy bitmap over the numeric key axis `[lo, hi]`.
///
/// One bitmap represents the union of every build partition's summary —
/// all partitions share the global key bounds, so inserting each
/// partition's keys into the shared bitmap is that union.
#[derive(Debug, Clone, PartialEq)]
pub struct KeySummary {
    lo: f64,
    hi: f64,
    words: Vec<u64>,
}

impl KeySummary {
    /// An empty summary over the key range `[lo, hi]` (`lo <= hi`).
    pub fn new(lo: f64, hi: f64) -> KeySummary {
        KeySummary {
            lo,
            hi,
            words: vec![0u64; SUMMARY_BUCKETS / 64],
        }
    }

    /// The bucket index a key value falls into (values are clamped, so
    /// callers may pass the summary range's own endpoints safely).
    #[inline]
    fn bucket(&self, v: f64) -> usize {
        if self.hi <= self.lo {
            return 0;
        }
        let frac = ((v - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0);
        ((frac * SUMMARY_BUCKETS as f64) as usize).min(SUMMARY_BUCKETS - 1)
    }

    #[inline]
    fn set(&mut self, bucket: usize) {
        self.words[bucket / 64] |= 1u64 << (bucket % 64);
    }

    #[inline]
    fn get(&self, bucket: usize) -> bool {
        self.words[bucket / 64] & (1u64 << (bucket % 64)) != 0
    }

    /// Mark the buckets of every non-null value of one build partition's
    /// key column. Non-numeric columns mark nothing (and callers should
    /// not build summaries for them).
    pub fn insert_column(&mut self, col: &Column) {
        match col {
            Column::Int64(vals, validity) => {
                for (i, &v) in vals.iter().enumerate() {
                    if validity.as_ref().is_none_or(|bm| bm.get(i)) {
                        let b = self.bucket(v as f64);
                        self.set(b);
                    }
                }
            }
            Column::Date(vals, validity) => {
                for (i, &v) in vals.iter().enumerate() {
                    if validity.as_ref().is_none_or(|bm| bm.get(i)) {
                        let b = self.bucket(v as f64);
                        self.set(b);
                    }
                }
            }
            Column::Float64(vals, validity) => {
                for (i, &v) in vals.iter().enumerate() {
                    if validity.as_ref().is_none_or(|bm| bm.get(i)) {
                        let b = self.bucket(v);
                        self.set(b);
                    }
                }
            }
            Column::Utf8(..) | Column::Bool(..) => {}
        }
    }

    /// Build the merged summary of every build partition's key column over
    /// their shared global key bounds. `None` when no column yields
    /// numeric values.
    ///
    /// All partitions share one `[lo, hi]` range, so inserting each
    /// partition's keys into a single bitmap *is* the union of the
    /// per-partition summaries — no intermediate partials needed.
    pub fn from_partitions(thread_keys: &[Column]) -> Option<KeySummary> {
        let mut bounds: Option<(f64, f64)> = None;
        for col in thread_keys {
            if let Some((lo, hi)) = col.min_max_axis() {
                bounds = Some(match bounds {
                    None => (lo, hi),
                    Some((a, b)) => (a.min(lo), b.max(hi)),
                });
            }
        }
        let (lo, hi) = bounds?;
        let mut merged = KeySummary::new(lo, hi);
        for col in thread_keys {
            merged.insert_column(col);
        }
        Some(merged)
    }

    /// Whether any occupied bucket intersects the value range `[min, max]`
    /// (a chunk's zone map). `false` is a proof that no build key can fall
    /// inside the range.
    pub fn overlaps_range(&self, min: f64, max: f64) -> bool {
        if max < self.lo || min > self.hi {
            return false;
        }
        let first = self.bucket(min);
        let last = self.bucket(max);
        (first..=last).any(|b| self.get(b))
    }

    /// Fraction of buckets occupied (1.0 means the summary can prove
    /// nothing — e.g. uniformly scattered build keys).
    pub fn occupancy(&self) -> f64 {
        let set: u32 = self.words.iter().map(|w| w.count_ones()).sum();
        set as f64 / SUMMARY_BUCKETS as f64
    }

    /// Memory footprint of the bitmap in bytes.
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfq_storage::Bitmap;

    fn int_col(vals: &[i64]) -> Column {
        Column::Int64(vals.to_vec(), None)
    }

    #[test]
    fn no_false_skips_on_inserted_values() {
        let keys: Vec<i64> = (0..5000).collect();
        let s = KeySummary::from_partitions(&[int_col(&keys)]).unwrap();
        for probe in [0i64, 1, 2500, 4999] {
            assert!(
                s.overlaps_range(probe as f64, probe as f64),
                "false skip for inserted key {probe}"
            );
        }
    }

    #[test]
    fn skips_gaps_in_clustered_keys() {
        // Two clusters with a wide gap: the gap range must be provably empty.
        let mut keys: Vec<i64> = (0..1000).collect();
        keys.extend(1_000_000..1_001_000);
        let s = KeySummary::from_partitions(&[int_col(&keys)]).unwrap();
        assert!(s.overlaps_range(0.0, 999.0));
        assert!(s.overlaps_range(1_000_000.0, 1_000_500.0));
        assert!(!s.overlaps_range(200_000.0, 800_000.0), "gap not skipped");
        // Outside the global bounds entirely.
        assert!(!s.overlaps_range(-50.0, -1.0));
        assert!(!s.overlaps_range(2_000_000.0, 3_000_000.0));
        assert!(s.occupancy() < 0.01);
    }

    #[test]
    fn partition_summaries_union() {
        let s = KeySummary::from_partitions(&[
            int_col(&(0..500).collect::<Vec<_>>()),
            int_col(&(100_000..100_500).collect::<Vec<_>>()),
        ])
        .unwrap();
        assert!(s.overlaps_range(250.0, 250.0));
        assert!(s.overlaps_range(100_250.0, 100_250.0));
        assert!(!s.overlaps_range(10_000.0, 90_000.0));
    }

    #[test]
    fn nulls_and_non_numeric_columns() {
        let with_nulls = Column::Int64(vec![5, 999], Some(Bitmap::from_bools([true, false])));
        let s = KeySummary::from_partitions(&[with_nulls]).unwrap();
        // The null 999 was never inserted; min_max_axis ignored it too, so
        // the range is the single value 5.
        assert!(s.overlaps_range(5.0, 5.0));
        let strs: bfq_storage::StrData = ["a", "b"].iter().map(|s| s.to_string()).collect();
        assert!(KeySummary::from_partitions(&[Column::Utf8(strs, None)]).is_none());
    }

    #[test]
    fn degenerate_single_value_range() {
        let s = KeySummary::from_partitions(&[int_col(&[7, 7, 7])]).unwrap();
        assert!(s.overlaps_range(7.0, 7.0));
        assert!(s.overlaps_range(0.0, 100.0));
        assert!(!s.overlaps_range(8.0, 100.0));
        assert_eq!(s.size_bytes(), SUMMARY_BUCKETS / 8);
    }
}
