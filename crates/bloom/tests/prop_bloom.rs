//! Property-based tests for the Bloom filter substrate: the no-false-negative
//! guarantee under arbitrary key sets, merge semantics, and strategy
//! equivalence.

use bfq_bloom::strategy::{build_filter, StreamingStrategy};
use bfq_bloom::BloomFilter;
use bfq_storage::Column;
use proptest::prelude::*;

proptest! {
    /// The defining property: no false negatives, for any key multiset and
    /// any (power-of-two) size.
    #[test]
    fn never_false_negative(
        keys in proptest::collection::vec(any::<i64>(), 1..500),
        bits_log2 in 6u32..14,
    ) {
        let mut f = BloomFilter::with_bits(1 << bits_log2);
        for &k in &keys {
            f.insert_i64(k);
        }
        for &k in &keys {
            prop_assert!(f.contains_i64(k));
        }
    }

    /// Union contains exactly what either side would report.
    #[test]
    fn union_is_superset(
        a_keys in proptest::collection::vec(any::<i64>(), 0..200),
        b_keys in proptest::collection::vec(any::<i64>(), 0..200),
        probes in proptest::collection::vec(any::<i64>(), 1..100),
    ) {
        let bits = 1 << 12;
        let mut a = BloomFilter::with_bits(bits);
        let mut b = BloomFilter::with_bits(bits);
        for &k in &a_keys { a.insert_i64(k); }
        for &k in &b_keys { b.insert_i64(k); }
        let mut u = a.clone();
        u.union_with(&b);
        for &p in &probes {
            // Anything either filter admits, the union admits. (The union
            // may admit additional false positives — bits set by different
            // keys can combine — so only this direction is a law.)
            if a.contains_i64(p) || b.contains_i64(p) {
                prop_assert!(u.contains_i64(p));
            }
        }
    }

    /// All four §3.9 streaming strategies admit every inserted key (their
    /// survivor sets may differ only in false positives).
    #[test]
    fn strategies_admit_all_keys(
        keys in proptest::collection::vec(-10_000i64..10_000, 4..400),
        threads in 1usize..5,
    ) {
        let per = keys.len().div_ceil(threads);
        let cols: Vec<Column> = keys
            .chunks(per)
            .map(|c| Column::Int64(c.to_vec(), None))
            .collect();
        let probe = Column::Int64(keys.clone(), None);
        let all: Vec<u32> = (0..keys.len() as u32).collect();
        for strat in [
            StreamingStrategy::BroadcastProbe,
            StreamingStrategy::PartitionUnaligned,
            StreamingStrategy::PartitionAligned,
        ] {
            let f = build_filter(strat, &cols, keys.len());
            let survivors = f.probe(&probe, &all);
            prop_assert_eq!(
                survivors.len(),
                keys.len(),
                "{:?} dropped inserted keys", strat
            );
        }
    }

    /// Saturation is monotone under insertion and bounded by 1.
    #[test]
    fn saturation_monotone(keys in proptest::collection::vec(any::<i64>(), 1..300)) {
        let mut f = BloomFilter::with_bits(1 << 10);
        let mut last = 0.0f64;
        for &k in &keys {
            f.insert_i64(k);
            let s = f.saturation();
            prop_assert!(s >= last && s <= 1.0);
            last = s;
        }
    }
}
