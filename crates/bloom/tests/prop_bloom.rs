//! Property-based tests for the Bloom filter substrate: the no-false-negative
//! guarantee under arbitrary key sets (both bit layouts), merge semantics,
//! strategy equivalence, batch-probe/scalar-probe agreement, and the
//! blocked layout's FPR band.

use bfq_bloom::strategy::{build_filter, StreamingStrategy};
use bfq_bloom::{BloomFilter, BloomLayout, ProbeScratch};
use bfq_storage::Column;
use proptest::prelude::*;

proptest! {
    /// The defining property: no false negatives, for any key multiset and
    /// any (power-of-two) size, under either bit layout.
    #[test]
    fn never_false_negative(
        keys in proptest::collection::vec(any::<i64>(), 1..500),
        bits_log2 in 9u32..14,
    ) {
        for layout in BloomLayout::ALL {
            let mut f = BloomFilter::with_bits_layout(1 << bits_log2, layout);
            for &k in &keys {
                f.insert_i64(k);
            }
            for &k in &keys {
                prop_assert!(f.contains_i64(k), "false negative under {layout}");
            }
        }
    }

    /// Union contains exactly what either side would report.
    #[test]
    fn union_is_superset(
        a_keys in proptest::collection::vec(any::<i64>(), 0..200),
        b_keys in proptest::collection::vec(any::<i64>(), 0..200),
        probes in proptest::collection::vec(any::<i64>(), 1..100),
    ) {
        for layout in BloomLayout::ALL {
            let bits = 1 << 12;
            let mut a = BloomFilter::with_bits_layout(bits, layout);
            let mut b = BloomFilter::with_bits_layout(bits, layout);
            for &k in &a_keys { a.insert_i64(k); }
            for &k in &b_keys { b.insert_i64(k); }
            let mut u = a.clone();
            u.union_with(&b);
            for &p in &probes {
                // Anything either filter admits, the union admits. (The union
                // may admit additional false positives — bits set by different
                // keys can combine — so only this direction is a law.)
                if a.contains_i64(p) || b.contains_i64(p) {
                    prop_assert!(u.contains_i64(p));
                }
            }
        }
    }

    /// All four §3.9 streaming strategies admit every inserted key (their
    /// survivor sets may differ only in false positives), under both
    /// layouts.
    #[test]
    fn strategies_admit_all_keys(
        keys in proptest::collection::vec(-10_000i64..10_000, 4..400),
        threads in 1usize..5,
    ) {
        let per = keys.len().div_ceil(threads);
        let cols: Vec<Column> = keys
            .chunks(per)
            .map(|c| Column::Int64(c.to_vec(), None))
            .collect();
        let probe = Column::Int64(keys.clone(), None);
        let all: Vec<u32> = (0..keys.len() as u32).collect();
        for layout in BloomLayout::ALL {
            for strat in [
                StreamingStrategy::BroadcastProbe,
                StreamingStrategy::PartitionUnaligned,
                StreamingStrategy::PartitionAligned,
            ] {
                let f = build_filter(strat, &cols, keys.len(), layout);
                let survivors = f.probe(&probe, &all);
                prop_assert_eq!(
                    survivors.len(),
                    keys.len(),
                    "{:?}/{} dropped inserted keys", strat, layout
                );
            }
        }
    }

    /// The batched probe over pre-hashed columns returns exactly the rows
    /// the scalar probe admits — for any keys, probes, selection, and
    /// layout.
    #[test]
    fn batch_probe_equals_scalar_probe(
        keys in proptest::collection::vec(any::<i64>(), 1..300),
        probes in proptest::collection::vec(any::<i64>(), 1..300),
        layout_blocked in any::<bool>(),
    ) {
        let layout = if layout_blocked { BloomLayout::Blocked } else { BloomLayout::Standard };
        let mut f = BloomFilter::with_expected_ndv_layout(keys.len(), layout);
        for &k in &keys { f.insert_i64(k); }
        let rf = bfq_bloom::RuntimeFilter::single(f.clone());
        let col = Column::Int64(probes.clone(), None);
        // Every other row, as an arbitrary non-trivial selection.
        let sel: Vec<u32> = (0..probes.len() as u32).step_by(2).collect();
        let mut scratch = ProbeScratch::new();
        let mut out = Vec::new();
        rf.probe_into(&col, Some(&sel), &mut scratch, &mut out);
        let scalar: Vec<u32> = sel
            .iter()
            .copied()
            .filter(|&i| f.contains_i64(probes[i as usize]))
            .collect();
        prop_assert_eq!(out, scalar, "batch/scalar divergence under {}", layout);
    }

    /// Saturation is monotone under insertion and bounded by 1.
    #[test]
    fn saturation_monotone(keys in proptest::collection::vec(any::<i64>(), 1..300)) {
        let mut f = BloomFilter::with_bits(1 << 10);
        let mut last = 0.0f64;
        for &k in &keys {
            f.insert_i64(k);
            let s = f.saturation();
            prop_assert!(s >= last && s <= 1.0);
            last = s;
        }
    }
}

/// The blocked layout's observed false-positive rate lands in the band the
/// corrected theory predicts — above the uncorrected standard formula's
/// neighborhood is allowed, runaway collision behavior is not.
#[test]
fn blocked_fpr_within_theoretical_band() {
    for n in [4_096i64, 65_536] {
        let mut f = BloomFilter::with_expected_ndv_layout(n as usize, BloomLayout::Blocked);
        for v in 0..n {
            f.insert_i64(v);
        }
        let probes = 200_000i64;
        let fp = (n..n + probes).filter(|&v| f.contains_i64(v)).count();
        let observed = fp as f64 / probes as f64;
        let theory = bfq_bloom::blocked_fpr(f.num_bits() as f64, n as f64);
        assert!(
            observed < theory * 1.5 + 0.005,
            "n={n}: observed {observed} way above blocked theory {theory}"
        );
        assert!(
            observed > theory * 0.5 - 0.005,
            "n={n}: observed {observed} implausibly below blocked theory {theory}"
        );
    }
}
