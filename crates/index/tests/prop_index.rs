//! Property tests for chunk pruning: the one-sided contract that a *skip*
//! verdict is a proof.
//!
//! * Local-predicate pruning: if [`chunk_prune`] skips a chunk, evaluating
//!   the predicate row-by-row must select nothing — for arbitrary data
//!   (with nulls), arbitrary AND/OR predicate trees, and every
//!   [`IndexMode`] tier.
//! * Runtime-filter pruning: if [`rf_chunk_prune`] skips a chunk, no chunk
//!   value may equal any actual build key (rows admitted only by the
//!   runtime filter's false positives are legal to drop — the filter is
//!   planned only where dropping non-matching rows is safe).

use std::sync::Arc;

use bfq_bloom::strategy::{build_filter, StreamingStrategy};
use bfq_bloom::BloomLayout;
use bfq_common::{ColumnId, Datum, TableId};
use bfq_expr::{eval_predicate, BinOp, Expr, Layout, UnOp};
use bfq_index::{
    build_chunk_index, build_chunk_index_layout, chunk_prune, rf_chunk_prune, IndexMode,
    PruneOutcome,
};
use bfq_storage::{Bitmap, Chunk, Column, StrData};
use proptest::prelude::*;

fn cid(i: u32) -> ColumnId {
    ColumnId::new(TableId(0), i)
}

/// Build a 3-column chunk (Int64 with nulls, Date, Utf8) from raw values.
fn make_chunk(ints: &[i64], nulls: &[bool]) -> Chunk {
    let validity: Vec<bool> = ints
        .iter()
        .enumerate()
        .map(|(i, _)| !nulls[i % nulls.len()])
        .collect();
    let has_null = validity.iter().any(|v| !v);
    let dates: Vec<i32> = ints.iter().map(|&v| v as i32).collect();
    let strs: StrData = ints.iter().map(|v| format!("s{v}")).collect();
    Chunk::new(vec![
        Arc::new(Column::Int64(
            ints.to_vec(),
            has_null.then(|| Bitmap::from_bools(validity.clone())),
        )),
        Arc::new(Column::Date(dates, None)),
        Arc::new(Column::Utf8(strs, None)),
    ])
    .unwrap()
}

/// Derive one predicate term from a `(col, op, lit)` triple.
fn make_term(col: u8, op: u8, lit: i64) -> Expr {
    let col = (col % 3) as u32;
    let column = Expr::col(cid(col));
    let literal = match col {
        0 => Expr::lit(Datum::Int(lit)),
        1 => Expr::lit(Datum::Date(lit as i32)),
        _ => Expr::lit(Datum::str(format!("s{lit}"))),
    };
    match op % 7 {
        0 => Expr::binary(BinOp::Eq, column, literal),
        1 => Expr::binary(BinOp::Lt, column, literal),
        2 => Expr::binary(BinOp::GtEq, column, literal),
        3 if col != 2 => Expr::Between {
            expr: Box::new(column),
            low: Box::new(literal),
            high: Box::new(match col {
                0 => Expr::lit(Datum::Int(lit + 10)),
                _ => Expr::lit(Datum::Date(lit as i32 + 10)),
            }),
            negated: lit % 2 == 0,
        },
        4 => Expr::Unary {
            op: if lit % 2 == 0 {
                UnOp::IsNull
            } else {
                UnOp::IsNotNull
            },
            expr: Box::new(column),
        },
        5 => Expr::InList {
            expr: Box::new(column),
            list: vec![
                literal,
                match col {
                    0 => Expr::lit(Datum::Int(lit + 1)),
                    1 => Expr::lit(Datum::Date(lit as i32 + 1)),
                    _ => Expr::lit(Datum::str(format!("s{}", lit + 1))),
                },
            ],
            negated: false,
        },
        // Constant-on-the-left comparison exercises operand swapping.
        _ => Expr::binary(BinOp::Gt, literal, column),
    }
}

proptest! {
    /// Skip verdicts are proofs: a pruned chunk has zero matching rows.
    #[test]
    fn pruning_never_skips_matching_rows(
        ints in proptest::collection::vec(-50i64..50, 1..200),
        nulls in proptest::collection::vec(any::<bool>(), 1..8),
        terms in proptest::collection::vec((0u8..12, 0u8..12, -60i64..60), 1..5),
        connectives in proptest::collection::vec(any::<bool>(), 1..5),
    ) {
        let chunk = make_chunk(&ints, &nulls);
        let index = build_chunk_index(&chunk);
        let layout = Layout::new(vec![cid(0), cid(1), cid(2)]);
        let resolve = |c: ColumnId| Some(c.index as usize);

        let mut pred = make_term(terms[0].0, terms[0].1, terms[0].2);
        for (i, &(c, o, l)) in terms.iter().enumerate().skip(1) {
            let term = make_term(c, o, l);
            pred = if connectives[i % connectives.len()] {
                pred.and(term)
            } else {
                pred.or(term)
            };
        }

        let selected = eval_predicate(&pred, &chunk, &layout).unwrap();
        for mode in IndexMode::ALL {
            let verdict = chunk_prune(&index, &pred, &resolve, mode);
            if verdict != PruneOutcome::Keep {
                prop_assert!(
                    selected.is_empty(),
                    "{mode:?} pruned a chunk with {} matching rows; pred = {pred}",
                    selected.len()
                );
            }
            if mode == IndexMode::Off {
                prop_assert_eq!(verdict, PruneOutcome::Keep);
            }
        }
    }

    /// Runtime-filter skip verdicts are proofs: a pruned chunk shares no
    /// key with the filter's build side.
    #[test]
    fn rf_pruning_never_skips_joinable_rows(
        chunk_keys in proptest::collection::vec(-100i64..100, 1..300),
        build_keys in proptest::collection::vec(-100i64..100, 0..60),
    ) {
        let intersects = chunk_keys.iter().any(|k| build_keys.contains(k));
        // Both layouts: standard ships (h1, h2) key pairs, blocked ships
        // first-only hashes — the skip must stay a proof either way.
        for layout in BloomLayout::ALL {
            let col = Column::Int64(chunk_keys.clone(), None);
            let ci = build_chunk_index_layout(&Chunk::new(vec![Arc::new(col)]).unwrap(), layout);
            let ci = &ci.columns[0];
            let filter = build_filter(
                StreamingStrategy::BroadcastBuild,
                &[Column::Int64(build_keys.clone(), None)],
                build_keys.len().max(1),
                layout,
            );
            for mode in IndexMode::ALL {
                let verdict = rf_chunk_prune(
                    ci,
                    filter.key_bounds(),
                    filter.key_hashes(),
                    filter.key_summary(),
                    mode,
                );
                if verdict != PruneOutcome::Keep {
                    prop_assert!(
                        !intersects,
                        "{mode:?}/{layout:?} pruned a chunk that shares build keys"
                    );
                }
                if mode == IndexMode::Off {
                    prop_assert_eq!(verdict, PruneOutcome::Keep);
                }
            }
        }
    }
}

/// Summary-tier verdicts are proofs too: with a build side large enough
/// that exact key hashes are dropped, a summary skip implies the chunk
/// shares no key with the build side (deterministic sweep — the build is
/// too large for proptest row budgets).
#[test]
fn rf_summary_pruning_never_skips_joinable_rows() {
    // Clustered build: two bands with a wide gap.
    let mut build: Vec<i64> = (0..3000).collect();
    build.extend(50_000..53_000);
    let filter = build_filter(
        StreamingStrategy::BroadcastBuild,
        &[Column::Int64(build.clone(), None)],
        build.len(),
        BloomLayout::Standard,
    );
    assert!(
        filter.key_hashes().is_none(),
        "build must exceed hash limit"
    );
    assert!(filter.key_summary().is_some());
    for chunk_lo in (0..60_000i64).step_by(1_500) {
        let chunk_keys: Vec<i64> = (chunk_lo..chunk_lo + 1_000).collect();
        let col = Column::Int64(chunk_keys.clone(), None);
        let ci = build_chunk_index(&Chunk::new(vec![Arc::new(col)]).unwrap());
        let verdict = rf_chunk_prune(
            &ci.columns[0],
            filter.key_bounds(),
            filter.key_hashes(),
            filter.key_summary(),
            IndexMode::ZoneMap,
        );
        let hi = chunk_lo + 1_000;
        let intersects = (chunk_lo < 3_000) || (hi > 50_000 && chunk_lo < 53_000);
        if verdict != PruneOutcome::Keep {
            assert!(
                !intersects,
                "chunk [{chunk_lo}, {}) pruned despite sharing build keys",
                chunk_lo + 1_000
            );
        }
        // The mid-gap chunks must actually be skipped by the summary tier
        // (bounds alone cannot prove them empty).
        if chunk_lo >= 6_000 && chunk_lo + 1_000 <= 50_000 {
            assert_eq!(
                verdict,
                PruneOutcome::SkipSummary,
                "gap chunk [{chunk_lo}, {}) not summary-pruned",
                chunk_lo + 1_000
            );
        }
    }
}
