//! Building chunk indexes from sealed chunks.
//!
//! Policy (mirroring segment metadata in production columnar stores):
//! * zone maps for every numeric/date column — two `f64`s, always worth it;
//! * Bloom filters for key (Int64/Date) and string columns — equality
//!   probes are the common selective predicate on those types; floats and
//!   booleans get no filter (float equality is rare, boolean filters are
//!   useless at 2 distinct values).
//!
//! Filters are sized with [`bfq_bloom::math`] at the default bits-per-key
//! budget for the chunk's **exact distinct non-null value count** (one
//! hash-set pass at build time — index construction is off the query path,
//! so the pass is cheap relative to what it saves). Sizing by NDV instead
//! of row count shrinks low-cardinality-column filters dramatically: a
//! 64k-row chunk of `l_shipmode` holds 7 distinct values, so its filter
//! drops from ~80 KB to a few bytes at the same false-positive budget.
//! Filters use the same hash seeds as runtime join filters so one hashing
//! convention serves both layers.

use bfq_bloom::{BloomFilter, BloomLayout};
use bfq_common::DataType;
use bfq_storage::{Chunk, Column};

use crate::{ChunkIndex, ColumnIndex, ZoneMap};

/// Whether chunk Bloom filters are built for this column type.
fn bloom_indexed(dt: DataType) -> bool {
    matches!(dt, DataType::Int64 | DataType::Date | DataType::Utf8)
}

/// Build the index entry for one column (standard-layout chunk filters).
pub fn build_column_index(col: &Column) -> ColumnIndex {
    build_column_index_layout(col, BloomLayout::Standard)
}

/// Build the index entry for one column, with chunk Bloom filters laid out
/// per `layout` (probing is layout-agnostic: a filter knows its own bit
/// placement, so scans and runtime-filter key hashes work against either).
pub fn build_column_index_layout(col: &Column, layout: BloomLayout) -> ColumnIndex {
    let rows = col.len();
    let null_count = col.null_count();
    let zone = col.min_max_axis().map(|(min, max)| ZoneMap { min, max });
    let non_null = rows - null_count;
    let bloom = (bloom_indexed(col.data_type()) && non_null > 0).then(|| {
        // Exact NDV pass: sizing by distinct values instead of the non-null
        // row count shrinks low-cardinality filters 2-4x+ at the same
        // false-positive rate.
        let ndv = col.count_distinct().max(1);
        let mut f = BloomFilter::with_expected_ndv_layout(ndv, layout);
        f.insert_column(col);
        f.set_ndv_hint(ndv as u64);
        f
    });
    ColumnIndex {
        data_type: col.data_type(),
        rows,
        null_count,
        zone,
        bloom,
    }
}

/// Build the per-column index for a sealed chunk (standard-layout filters).
pub fn build_chunk_index(chunk: &Chunk) -> ChunkIndex {
    build_chunk_index_layout(chunk, BloomLayout::Standard)
}

/// Build the per-column index for a sealed chunk under `layout`.
pub fn build_chunk_index_layout(chunk: &Chunk, layout: BloomLayout) -> ChunkIndex {
    ChunkIndex {
        rows: chunk.rows(),
        columns: chunk
            .columns()
            .iter()
            .map(|c| build_column_index_layout(c, layout))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfq_storage::Bitmap;
    use std::sync::Arc;

    #[test]
    fn zone_maps_cover_numeric_and_date() {
        let chunk = Chunk::new(vec![
            Arc::new(Column::Int64(vec![5, -2, 9], None)),
            Arc::new(Column::Float64(vec![1.5, 0.5, 2.5], None)),
            Arc::new(Column::Date(vec![100, 50, 70], None)),
            Arc::new(Column::Utf8(
                ["a", "b", "c"].iter().map(|s| s.to_string()).collect(),
                None,
            )),
            Arc::new(Column::Bool(vec![true, false, true], None)),
        ])
        .unwrap();
        let idx = build_chunk_index(&chunk);
        assert_eq!(idx.rows, 3);
        assert_eq!(
            idx.columns[0].zone,
            Some(ZoneMap {
                min: -2.0,
                max: 9.0
            })
        );
        assert_eq!(idx.columns[1].zone, Some(ZoneMap { min: 0.5, max: 2.5 }));
        assert_eq!(
            idx.columns[2].zone,
            Some(ZoneMap {
                min: 50.0,
                max: 100.0
            })
        );
        assert!(idx.columns[3].zone.is_none());
        assert!(idx.columns[4].zone.is_none());
    }

    #[test]
    fn blooms_built_for_keys_and_strings_only() {
        let chunk = Chunk::new(vec![
            Arc::new(Column::Int64(vec![1, 2], None)),
            Arc::new(Column::Float64(vec![1.0, 2.0], None)),
            Arc::new(Column::Utf8(
                ["x", "y"].iter().map(|s| s.to_string()).collect(),
                None,
            )),
            Arc::new(Column::Bool(vec![true, false], None)),
            Arc::new(Column::Date(vec![7, 8], None)),
        ])
        .unwrap();
        let idx = build_chunk_index(&chunk);
        assert!(idx.columns[0].bloom.is_some());
        assert!(idx.columns[1].bloom.is_none());
        assert!(idx.columns[2].bloom.is_some());
        assert!(idx.columns[3].bloom.is_none());
        assert!(idx.columns[4].bloom.is_some());
        assert!(idx.size_bytes() > 0);
    }

    #[test]
    fn nulls_excluded_from_zone_and_bloom() {
        let col = Column::Int64(
            vec![10, 999, 20],
            Some(Bitmap::from_bools([true, false, true])),
        );
        let idx = build_column_index(&col);
        assert_eq!(idx.null_count, 1);
        assert_eq!(
            idx.zone,
            Some(ZoneMap {
                min: 10.0,
                max: 20.0
            })
        );
        let bloom = idx.bloom.as_ref().unwrap();
        assert_eq!(bloom.inserted_keys(), 2);
        assert!(bloom.contains_i64(10) && bloom.contains_i64(20));
    }

    #[test]
    fn blooms_sized_by_exact_ndv_not_row_count() {
        // A low-cardinality column (7 distinct values over 4096 rows, like
        // l_shipmode) must get a far smaller filter than a unique column of
        // the same length, and still answer membership correctly.
        let low: Vec<i64> = (0..4096).map(|i| i % 7).collect();
        let unique: Vec<i64> = (0..4096).collect();
        let low_idx = build_column_index(&Column::Int64(low, None));
        let uniq_idx = build_column_index(&Column::Int64(unique, None));
        let low_bits = low_idx.bloom.as_ref().unwrap().num_bits();
        let uniq_bits = uniq_idx.bloom.as_ref().unwrap().num_bits();
        assert!(
            low_bits * 4 <= uniq_bits,
            "low-NDV filter should be at least 4x smaller: {low_bits} vs {uniq_bits} bits"
        );
        // No false negatives despite the tighter sizing.
        let f = low_idx.bloom.as_ref().unwrap();
        for v in 0..7 {
            assert!(f.contains_i64(v));
        }
    }

    #[test]
    fn all_null_column_has_no_zone_or_bloom() {
        let col = Column::nulls(DataType::Int64, 4);
        let idx = build_column_index(&col);
        assert!(idx.all_null());
        assert!(idx.zone.is_none());
        assert!(idx.bloom.is_none());
    }
}
