//! Building chunk indexes from sealed chunks.
//!
//! Policy (mirroring segment metadata in production columnar stores):
//! * zone maps for every numeric/date column — two `f64`s, always worth it;
//! * Bloom filters for key (Int64/Date) and string columns — equality
//!   probes are the common selective predicate on those types; floats and
//!   booleans get no filter (float equality is rare, boolean filters are
//!   useless at 2 distinct values).
//!
//! Filters are sized with [`bfq_bloom::math`] at the default bits-per-key
//! budget for the chunk's non-null row count (an upper bound on its NDV),
//! and use the same hash seeds as runtime join filters so one hashing
//! convention serves both layers.

use bfq_bloom::BloomFilter;
use bfq_common::DataType;
use bfq_storage::{Chunk, Column};

use crate::{ChunkIndex, ColumnIndex, ZoneMap};

/// Whether chunk Bloom filters are built for this column type.
fn bloom_indexed(dt: DataType) -> bool {
    matches!(dt, DataType::Int64 | DataType::Date | DataType::Utf8)
}

/// Build the index entry for one column.
pub fn build_column_index(col: &Column) -> ColumnIndex {
    let rows = col.len();
    let null_count = col.null_count();
    let zone = col.min_max_axis().map(|(min, max)| ZoneMap { min, max });
    let non_null = rows - null_count;
    let bloom = (bloom_indexed(col.data_type()) && non_null > 0).then(|| {
        let mut f = BloomFilter::with_expected_ndv(non_null);
        f.insert_column(col);
        f
    });
    ColumnIndex {
        data_type: col.data_type(),
        rows,
        null_count,
        zone,
        bloom,
    }
}

/// Build the per-column index for a sealed chunk.
pub fn build_chunk_index(chunk: &Chunk) -> ChunkIndex {
    ChunkIndex {
        rows: chunk.rows(),
        columns: chunk
            .columns()
            .iter()
            .map(|c| build_column_index(c))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfq_storage::Bitmap;
    use std::sync::Arc;

    #[test]
    fn zone_maps_cover_numeric_and_date() {
        let chunk = Chunk::new(vec![
            Arc::new(Column::Int64(vec![5, -2, 9], None)),
            Arc::new(Column::Float64(vec![1.5, 0.5, 2.5], None)),
            Arc::new(Column::Date(vec![100, 50, 70], None)),
            Arc::new(Column::Utf8(
                ["a", "b", "c"].iter().map(|s| s.to_string()).collect(),
                None,
            )),
            Arc::new(Column::Bool(vec![true, false, true], None)),
        ])
        .unwrap();
        let idx = build_chunk_index(&chunk);
        assert_eq!(idx.rows, 3);
        assert_eq!(
            idx.columns[0].zone,
            Some(ZoneMap {
                min: -2.0,
                max: 9.0
            })
        );
        assert_eq!(idx.columns[1].zone, Some(ZoneMap { min: 0.5, max: 2.5 }));
        assert_eq!(
            idx.columns[2].zone,
            Some(ZoneMap {
                min: 50.0,
                max: 100.0
            })
        );
        assert!(idx.columns[3].zone.is_none());
        assert!(idx.columns[4].zone.is_none());
    }

    #[test]
    fn blooms_built_for_keys_and_strings_only() {
        let chunk = Chunk::new(vec![
            Arc::new(Column::Int64(vec![1, 2], None)),
            Arc::new(Column::Float64(vec![1.0, 2.0], None)),
            Arc::new(Column::Utf8(
                ["x", "y"].iter().map(|s| s.to_string()).collect(),
                None,
            )),
            Arc::new(Column::Bool(vec![true, false], None)),
            Arc::new(Column::Date(vec![7, 8], None)),
        ])
        .unwrap();
        let idx = build_chunk_index(&chunk);
        assert!(idx.columns[0].bloom.is_some());
        assert!(idx.columns[1].bloom.is_none());
        assert!(idx.columns[2].bloom.is_some());
        assert!(idx.columns[3].bloom.is_none());
        assert!(idx.columns[4].bloom.is_some());
        assert!(idx.size_bytes() > 0);
    }

    #[test]
    fn nulls_excluded_from_zone_and_bloom() {
        let col = Column::Int64(
            vec![10, 999, 20],
            Some(Bitmap::from_bools([true, false, true])),
        );
        let idx = build_column_index(&col);
        assert_eq!(idx.null_count, 1);
        assert_eq!(
            idx.zone,
            Some(ZoneMap {
                min: 10.0,
                max: 20.0
            })
        );
        let bloom = idx.bloom.as_ref().unwrap();
        assert_eq!(bloom.inserted_keys(), 2);
        assert!(bloom.contains_i64(10) && bloom.contains_i64(20));
    }

    #[test]
    fn all_null_column_has_no_zone_or_bloom() {
        let col = Column::nulls(DataType::Int64, 4);
        let idx = build_column_index(&col);
        assert!(idx.all_null());
        assert!(idx.zone.is_none());
        assert!(idx.bloom.is_none());
    }
}
