//! Per-chunk zone maps and Bloom indexes with scan-time data skipping.
//!
//! The paper puts Bloom filters *inside* the optimizer for join pruning;
//! this crate extends the same machinery downward into storage, the way
//! production columnar stores (segment min/max metadata, SST-level Bloom
//! filters) skip whole blocks before touching a row:
//!
//! * a [`ZoneMap`] records per-chunk min/max of each numeric/date column,
//!   so range and equality predicates can prove a chunk empty;
//! * a chunk-level [`bfq_bloom::BloomFilter`] over key and string columns
//!   answers "could this value be in this chunk?" for equality probes —
//!   both literal predicates (`o_orderkey = k`) and the runtime
//!   `BloomApply` join keys (when the build side is small enough that its
//!   exact key hashes travel with the [`bfq_bloom::RuntimeFilter`]);
//! * [`prune::chunk_prune`] is the conservative evaluator: it may only
//!   answer *skip* when no row of the chunk can satisfy the predicate, so
//!   pruning never changes query results (property-tested in
//!   `tests/prop_index.rs`).
//!
//! [`IndexMode`] selects how much of this a scan consults — `off`,
//! `zonemap`, or `zonemap+bloom` — so experiments can ablate each tier.

pub mod builder;
pub mod prune;

use std::str::FromStr;

use bfq_bloom::BloomFilter;
use bfq_common::DataType;

pub use bfq_bloom::BloomLayout;
pub use builder::{
    build_chunk_index, build_chunk_index_layout, build_column_index, build_column_index_layout,
};
pub use prune::{chunk_prune, rf_chunk_prune, PruneOutcome};

/// How much of the chunk index a scan consults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IndexMode {
    /// No data skipping: every chunk is scanned row by row.
    Off,
    /// Min/max zone maps only.
    ZoneMap,
    /// Zone maps plus chunk Bloom probes (literal equality keys and small
    /// runtime-filter key sets).
    #[default]
    ZoneMapBloom,
}

impl IndexMode {
    /// Whether zone maps are consulted.
    pub fn zonemaps(self) -> bool {
        !matches!(self, IndexMode::Off)
    }

    /// Whether chunk Bloom indexes are consulted.
    pub fn blooms(self) -> bool {
        matches!(self, IndexMode::ZoneMapBloom)
    }

    /// Display label (also the accepted `FromStr` spellings).
    pub fn label(self) -> &'static str {
        match self {
            IndexMode::Off => "off",
            IndexMode::ZoneMap => "zonemap",
            IndexMode::ZoneMapBloom => "zonemap+bloom",
        }
    }

    /// All modes, weakest first (ablation order).
    pub const ALL: [IndexMode; 3] = [IndexMode::Off, IndexMode::ZoneMap, IndexMode::ZoneMapBloom];
}

impl FromStr for IndexMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" => Ok(IndexMode::Off),
            "zonemap" | "zone" => Ok(IndexMode::ZoneMap),
            "zonemap+bloom" | "zonemap_bloom" | "bloom" | "full" => Ok(IndexMode::ZoneMapBloom),
            other => Err(format!(
                "unknown index mode `{other}` (expected off | zonemap | zonemap+bloom)"
            )),
        }
    }
}

impl std::fmt::Display for IndexMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Min/max of a column's non-null values on the shared numeric axis
/// (ints, floats and dates all project onto `f64`, matching the
/// selectivity estimator's [`ColStatsView`](bfq_expr::selectivity::ColStatsView)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZoneMap {
    /// Smallest non-null value.
    pub min: f64,
    /// Largest non-null value.
    pub max: f64,
}

/// Index entry for one column of one chunk.
#[derive(Debug, Clone)]
pub struct ColumnIndex {
    /// The column's type (needed to hash probe literals consistently).
    pub data_type: DataType,
    /// Rows in the chunk.
    pub rows: usize,
    /// Null rows in this column.
    pub null_count: usize,
    /// Zone map, present for numeric/date columns with ≥ 1 non-null row.
    pub zone: Option<ZoneMap>,
    /// Membership filter, present for key (Int64/Date) and string columns.
    pub bloom: Option<BloomFilter>,
}

impl ColumnIndex {
    /// Whether every row of this column is NULL.
    pub fn all_null(&self) -> bool {
        self.null_count == self.rows
    }
}

/// Index of one chunk: per-column entries aligned with the schema.
#[derive(Debug, Clone)]
pub struct ChunkIndex {
    /// Rows in the chunk.
    pub rows: usize,
    /// One entry per schema column.
    pub columns: Vec<ColumnIndex>,
}

impl ChunkIndex {
    /// Approximate memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.columns
            .iter()
            .map(|c| {
                std::mem::size_of::<ColumnIndex>() + c.bloom.as_ref().map_or(0, |b| b.size_bytes())
            })
            .sum()
    }
}

/// Per-chunk statistics for a whole table, built once at load time.
#[derive(Debug, Clone, Default)]
pub struct TableIndex {
    /// One index per table chunk, in chunk order.
    pub chunks: Vec<ChunkIndex>,
}

impl TableIndex {
    /// Build the index for every chunk of `table` (standard-layout chunk
    /// Bloom filters).
    pub fn build(table: &bfq_storage::Table) -> TableIndex {
        TableIndex::build_layout(table, BloomLayout::Standard)
    }

    /// Build the index for every chunk of `table`, with chunk Bloom filters
    /// in the given bit-placement layout.
    pub fn build_layout(table: &bfq_storage::Table, layout: BloomLayout) -> TableIndex {
        TableIndex {
            chunks: table
                .chunks()
                .iter()
                .map(|c| build_chunk_index_layout(c, layout))
                .collect(),
        }
    }

    /// Index of chunk `i`, if present.
    pub fn chunk(&self, i: usize) -> Option<&ChunkIndex> {
        self.chunks.get(i)
    }

    /// Number of indexed chunks.
    pub fn len(&self) -> usize {
        self.chunks.len()
    }

    /// Whether the table had zero chunks.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Approximate memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.chunks.iter().map(|c| c.size_bytes()).sum()
    }

    /// Upper bound on the rows that can satisfy `pred`, summing the rows of
    /// chunks the pruning evaluator cannot rule out. Returns
    /// `(surviving_rows, surviving_chunks)`. `resolve` maps predicate
    /// [`bfq_common::ColumnId`]s to schema ordinals (scans over a base table
    /// use the identity on `ColumnId::index`).
    ///
    /// This is the planning-side consumer of zone maps: the cardinality
    /// estimator clamps scan output rows and scan *read* rows with it, so
    /// data skipping feeds back into join-order and Bloom-filter choices.
    pub fn matching_rows(
        &self,
        pred: &bfq_expr::Expr,
        resolve: &dyn Fn(bfq_common::ColumnId) -> Option<usize>,
        mode: IndexMode,
    ) -> (usize, usize) {
        let mut rows = 0usize;
        let mut kept = 0usize;
        for chunk in &self.chunks {
            if chunk_prune(chunk, pred, resolve, mode) == PruneOutcome::Keep {
                rows += chunk.rows;
                kept += 1;
            }
        }
        (rows, kept)
    }
}
