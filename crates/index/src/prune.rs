//! The conservative chunk-pruning evaluator.
//!
//! [`chunk_prune`] decides, from a chunk's index alone, whether a predicate
//! can possibly be TRUE for any row of the chunk. The contract is one-sided:
//! a *skip* answer must be a proof (no false negatives — property-tested),
//! while *keep* is always allowed. SQL three-valued logic works in the
//! evaluator's favor: a WHERE clause keeps only rows where the predicate is
//! TRUE, and no comparison is TRUE on a NULL input, so zone maps over
//! non-null values suffice.
//!
//! [`rf_chunk_prune`] is the runtime-filter counterpart: a scan that was
//! planned to apply a join Bloom filter (`BloomApply`) can skip a whole
//! chunk when the filter's build-key bounds miss the chunk's zone map,
//! when the build side was small enough to ship its exact key hashes and
//! none of them hit the chunk's Bloom index, or — for large numeric builds
//! — when the filter's merged per-partition [`KeySummary`] has no occupied
//! bucket inside the chunk's value range.

use bfq_bloom::{KeyHashes, KeySummary, BLOOM_SEED_1, BLOOM_SEED_2};
use bfq_common::hash::{hash_bytes, hash_f64, hash_i64};
use bfq_common::{ColumnId, DataType, Datum};
use bfq_expr::{BinOp, Expr, UnOp};

use crate::{ChunkIndex, ColumnIndex, IndexMode};

/// The result of a chunk-level prune check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneOutcome {
    /// The chunk may contain matching rows; scan it.
    Keep,
    /// A zone map proved no row can match.
    SkipZone,
    /// A chunk Bloom probe proved no row can match.
    SkipBloom,
    /// A runtime filter's build-key summary (the large-build fallback
    /// sketch) proved no row can match.
    SkipSummary,
}

/// Resolver from predicate column ids to chunk schema ordinals.
pub type Resolve<'a> = dyn Fn(ColumnId) -> Option<usize> + 'a;

/// Decide whether `pred` can be TRUE for any row of the indexed chunk.
///
/// Zone maps are tried first; if they keep the chunk and `mode` enables
/// Bloom probes, equality literals are additionally tested against the
/// chunk's Bloom filters. The returned outcome names the tier that proved
/// the skip.
pub fn chunk_prune(
    idx: &ChunkIndex,
    pred: &Expr,
    resolve: &Resolve<'_>,
    mode: IndexMode,
) -> PruneOutcome {
    if !mode.zonemaps() {
        return PruneOutcome::Keep;
    }
    if !may_match(idx, pred, resolve, false) {
        return PruneOutcome::SkipZone;
    }
    if mode.blooms() && !may_match(idx, pred, resolve, true) {
        return PruneOutcome::SkipBloom;
    }
    PruneOutcome::Keep
}

/// Decide whether any row of the indexed column can survive a runtime join
/// filter described by its build-key `bounds` (numeric-axis min/max), the
/// exact `key_hashes` of its keys when the build side was small (hashed
/// with the shared Bloom seeds), or the [`KeySummary`] occupancy sketch
/// carried by large numeric builds.
pub fn rf_chunk_prune(
    ci: &ColumnIndex,
    bounds: Option<(f64, f64)>,
    key_hashes: Option<&KeyHashes>,
    key_summary: Option<&KeySummary>,
    mode: IndexMode,
) -> PruneOutcome {
    if !mode.zonemaps() {
        return PruneOutcome::Keep;
    }
    // A NULL join key never passes a runtime filter probe.
    if ci.all_null() {
        return PruneOutcome::SkipZone;
    }
    if let (Some((lo, hi)), Some(zone)) = (bounds, ci.zone) {
        if zone.max < lo || zone.min > hi {
            return PruneOutcome::SkipZone;
        }
    }
    // Zone-style fallback for large builds: the chunk's value range must
    // touch an occupied build-key bucket.
    if let (Some(summary), Some(zone)) = (key_summary, ci.zone) {
        if !summary.overlaps_range(zone.min, zone.max) {
            return PruneOutcome::SkipSummary;
        }
    }
    if mode.blooms() {
        if let Some(keys) = key_hashes {
            // An empty build side passes nothing, chunk Bloom or not.
            if keys.is_empty() {
                return PruneOutcome::SkipBloom;
            }
            if let Some(bloom) = ci.bloom.as_ref() {
                let all_miss = match keys {
                    KeyHashes::Pairs(pairs) => {
                        pairs.iter().all(|&(h1, h2)| !bloom.contains_hashes(h1, h2))
                    }
                    // First-hash-only keys (blocked-layout build) can
                    // probe only a chunk filter that itself derives every
                    // bit from h1; a standard chunk filter would read the
                    // missing h2 and could prove a false skip.
                    KeyHashes::FirstOnly(h1s) => {
                        !bloom.needs_second_hash()
                            && h1s.iter().all(|&h1| !bloom.contains_hashes(h1, 0))
                    }
                };
                if all_miss {
                    return PruneOutcome::SkipBloom;
                }
            }
        }
    }
    PruneOutcome::Keep
}

/// Hash a literal the way [`bfq_storage::Column::hash_one`] hashes a value
/// of the column's type, coercing compatible numerics. `None` means the
/// literal cannot be hashed consistently (no Bloom conclusion possible).
fn hash_literal(d: &Datum, dt: DataType) -> Option<(u64, u64)> {
    let hash_pair_i64 = |v: i64| Some((hash_i64(v, BLOOM_SEED_1), hash_i64(v, BLOOM_SEED_2)));
    match (dt, d) {
        (DataType::Int64, Datum::Int(v)) => hash_pair_i64(*v),
        (DataType::Int64, Datum::Date(v)) => hash_pair_i64(*v as i64),
        (DataType::Date, Datum::Date(v)) => hash_pair_i64(*v as i64),
        (DataType::Date, Datum::Int(v)) => hash_pair_i64(*v),
        (DataType::Float64, Datum::Float(v)) => {
            Some((hash_f64(*v, BLOOM_SEED_1), hash_f64(*v, BLOOM_SEED_2)))
        }
        (DataType::Float64, Datum::Int(v)) => Some((
            hash_f64(*v as f64, BLOOM_SEED_1),
            hash_f64(*v as f64, BLOOM_SEED_2),
        )),
        (DataType::Utf8, Datum::Str(s)) => Some((
            hash_bytes(s.as_bytes(), BLOOM_SEED_1),
            hash_bytes(s.as_bytes(), BLOOM_SEED_2),
        )),
        (DataType::Bool, Datum::Bool(b)) => hash_pair_i64(*b as i64),
        _ => None,
    }
}

/// Core recursion: whether `e` can evaluate to TRUE for some row.
fn may_match(idx: &ChunkIndex, e: &Expr, resolve: &Resolve<'_>, use_bloom: bool) -> bool {
    match e {
        Expr::Literal(Datum::Bool(b)) => *b,
        // A NULL predicate is never TRUE.
        Expr::Literal(Datum::Null) => false,
        Expr::Binary { op, left, right } => match op {
            BinOp::And => {
                may_match(idx, left, resolve, use_bloom)
                    && may_match(idx, right, resolve, use_bloom)
            }
            BinOp::Or => {
                may_match(idx, left, resolve, use_bloom)
                    || may_match(idx, right, resolve, use_bloom)
            }
            op if op.is_comparison() => cmp_may_match(idx, *op, left, right, resolve, use_bloom),
            _ => true,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => between_may_match(idx, expr, low, high, *negated, resolve),
        Expr::InList {
            expr,
            list,
            negated: false,
        } => list
            .iter()
            .any(|item| cmp_may_match(idx, BinOp::Eq, expr, item, resolve, use_bloom)),
        Expr::Unary { op, expr } => match op {
            UnOp::IsNull => column_index(idx, expr, resolve).is_none_or(|ci| ci.null_count > 0),
            UnOp::IsNotNull => column_index(idx, expr, resolve).is_none_or(|ci| !ci.all_null()),
            _ => true,
        },
        _ => true,
    }
}

/// The chunk's index entry for a bare column expression, if resolvable.
fn column_index<'a>(
    idx: &'a ChunkIndex,
    e: &Expr,
    resolve: &Resolve<'_>,
) -> Option<&'a ColumnIndex> {
    match e {
        Expr::Column(c) => resolve(*c).and_then(|ord| idx.columns.get(ord)),
        _ => None,
    }
}

/// Whether `left op right` can be TRUE for some row, for a comparison that
/// normalizes to column-vs-constant.
fn cmp_may_match(
    idx: &ChunkIndex,
    op: BinOp,
    left: &Expr,
    right: &Expr,
    resolve: &Resolve<'_>,
    use_bloom: bool,
) -> bool {
    // Normalize to column-op-constant (mirrors the selectivity estimator).
    let (ci, constant, op) = match (column_index(idx, left, resolve), right.const_eval()) {
        (Some(ci), Some(k)) => (ci, k, op),
        _ => match (column_index(idx, right, resolve), left.const_eval()) {
            (Some(ci), Some(k)) => (ci, k, op.swap().unwrap_or(op)),
            _ => return true,
        },
    };
    if constant.is_null() {
        // Comparison with NULL is never TRUE.
        return false;
    }
    if ci.all_null() {
        // Comparison on an all-NULL column is never TRUE.
        return false;
    }
    let k = constant.as_f64();
    match op {
        BinOp::Eq => {
            if let (Some(zone), Some(k)) = (ci.zone, k) {
                if k < zone.min || k > zone.max {
                    return false;
                }
            }
            if use_bloom {
                if let (Some(bloom), Some((h1, h2))) =
                    (ci.bloom.as_ref(), hash_literal(&constant, ci.data_type))
                {
                    return bloom.contains_hashes(h1, h2);
                }
            }
            true
        }
        BinOp::NotEq => match (ci.zone, k) {
            // Single-valued chunk equal to the constant: `<>` never TRUE.
            (Some(zone), Some(k)) => !(zone.min == zone.max && zone.min == k),
            _ => true,
        },
        BinOp::Lt => match (ci.zone, k) {
            (Some(zone), Some(k)) => zone.min < k,
            _ => true,
        },
        BinOp::LtEq => match (ci.zone, k) {
            (Some(zone), Some(k)) => zone.min <= k,
            _ => true,
        },
        BinOp::Gt => match (ci.zone, k) {
            (Some(zone), Some(k)) => zone.max > k,
            _ => true,
        },
        BinOp::GtEq => match (ci.zone, k) {
            (Some(zone), Some(k)) => zone.max >= k,
            _ => true,
        },
        _ => true,
    }
}

/// Whether `expr [NOT] BETWEEN low AND high` can be TRUE for some row.
fn between_may_match(
    idx: &ChunkIndex,
    expr: &Expr,
    low: &Expr,
    high: &Expr,
    negated: bool,
    resolve: &Resolve<'_>,
) -> bool {
    let Some(ci) = column_index(idx, expr, resolve) else {
        return true;
    };
    if ci.all_null() {
        return false;
    }
    let (Some(zone), Some(lo), Some(hi)) = (
        ci.zone,
        low.const_eval().and_then(|d| d.as_f64()),
        high.const_eval().and_then(|d| d.as_f64()),
    ) else {
        return true;
    };
    if negated {
        // NOT BETWEEN is TRUE only for values outside [lo, hi].
        zone.min < lo || zone.max > hi
    } else {
        zone.max >= lo && zone.min <= hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_chunk_index;
    use bfq_common::TableId;
    use bfq_storage::{Bitmap, Chunk, Column};
    use std::sync::Arc;

    fn cid(i: u32) -> ColumnId {
        ColumnId::new(TableId(0), i)
    }

    fn resolve(c: ColumnId) -> Option<usize> {
        Some(c.index as usize)
    }

    /// Chunk: ints 10..=19, dates 100..=109, strings "v10".."v19",
    /// floats 0.10..0.19, and an int column with nulls.
    fn fixture() -> ChunkIndex {
        let ints: Vec<i64> = (10..20).collect();
        let dates: Vec<i32> = (100..110).collect();
        let strs: bfq_storage::StrData = (10..20).map(|i| format!("v{i}")).collect();
        let floats: Vec<f64> = (10..20).map(|i| i as f64 / 100.0).collect();
        let nully = Column::Int64(
            (0..10).collect(),
            Some(Bitmap::from_bools((0..10).map(|i| i % 2 == 0))),
        );
        let chunk = Chunk::new(vec![
            Arc::new(Column::Int64(ints, None)),
            Arc::new(Column::Date(dates, None)),
            Arc::new(Column::Utf8(strs, None)),
            Arc::new(Column::Float64(floats, None)),
            Arc::new(nully),
        ])
        .unwrap();
        build_chunk_index(&chunk)
    }

    fn prune(pred: &Expr, mode: IndexMode) -> PruneOutcome {
        chunk_prune(&fixture(), pred, &resolve, mode)
    }

    #[test]
    fn zone_range_pruning() {
        let out_of_range = Expr::binary(BinOp::Gt, Expr::col(cid(0)), Expr::int(100));
        assert_eq!(
            prune(&out_of_range, IndexMode::ZoneMap),
            PruneOutcome::SkipZone
        );
        assert_eq!(prune(&out_of_range, IndexMode::Off), PruneOutcome::Keep);
        let in_range = Expr::binary(BinOp::Gt, Expr::col(cid(0)), Expr::int(15));
        assert_eq!(prune(&in_range, IndexMode::ZoneMap), PruneOutcome::Keep);
        // Constant on the left swaps: 5 > col means col < 5; min is 10.
        let swapped = Expr::binary(BinOp::Gt, Expr::int(5), Expr::col(cid(0)));
        assert_eq!(prune(&swapped, IndexMode::ZoneMap), PruneOutcome::SkipZone);
        // Boundary inclusivity.
        let at_max = Expr::binary(BinOp::GtEq, Expr::col(cid(0)), Expr::int(19));
        assert_eq!(prune(&at_max, IndexMode::ZoneMap), PruneOutcome::Keep);
        let past_max = Expr::binary(BinOp::Gt, Expr::col(cid(0)), Expr::int(19));
        assert_eq!(prune(&past_max, IndexMode::ZoneMap), PruneOutcome::SkipZone);
    }

    #[test]
    fn zone_equality_and_between() {
        let eq_out = Expr::col(cid(1)).eq(Expr::lit(Datum::Date(500)));
        assert_eq!(prune(&eq_out, IndexMode::ZoneMap), PruneOutcome::SkipZone);
        let between_out = Expr::Between {
            expr: Box::new(Expr::col(cid(1))),
            low: Box::new(Expr::lit(Datum::Date(200))),
            high: Box::new(Expr::lit(Datum::Date(300))),
            negated: false,
        };
        assert_eq!(
            prune(&between_out, IndexMode::ZoneMap),
            PruneOutcome::SkipZone
        );
        let between_in = Expr::Between {
            expr: Box::new(Expr::col(cid(1))),
            low: Box::new(Expr::lit(Datum::Date(105))),
            high: Box::new(Expr::lit(Datum::Date(300))),
            negated: false,
        };
        assert_eq!(prune(&between_in, IndexMode::ZoneMap), PruneOutcome::Keep);
        // NOT BETWEEN over a covering range can never be TRUE.
        let not_between_covering = Expr::Between {
            expr: Box::new(Expr::col(cid(1))),
            low: Box::new(Expr::lit(Datum::Date(0))),
            high: Box::new(Expr::lit(Datum::Date(1000))),
            negated: true,
        };
        assert_eq!(
            prune(&not_between_covering, IndexMode::ZoneMap),
            PruneOutcome::SkipZone
        );
    }

    #[test]
    fn bloom_equality_pruning() {
        // 55 is inside the int zone [10, 19]? No — use a value inside the
        // zone that is absent: zone is 10..=19 and all present, so use the
        // string column instead (no zone, bloom only).
        let miss = Expr::col(cid(2)).eq(Expr::lit(Datum::str("v99")));
        assert_eq!(prune(&miss, IndexMode::ZoneMap), PruneOutcome::Keep);
        assert_eq!(
            prune(&miss, IndexMode::ZoneMapBloom),
            PruneOutcome::SkipBloom
        );
        let hit = Expr::col(cid(2)).eq(Expr::lit(Datum::str("v15")));
        assert_eq!(prune(&hit, IndexMode::ZoneMapBloom), PruneOutcome::Keep);
        // IN list: kept iff any member may be present.
        let in_miss = Expr::InList {
            expr: Box::new(Expr::col(cid(2))),
            list: vec![Expr::lit(Datum::str("v98")), Expr::lit(Datum::str("v99"))],
            negated: false,
        };
        assert_eq!(
            prune(&in_miss, IndexMode::ZoneMapBloom),
            PruneOutcome::SkipBloom
        );
        let in_hit = Expr::InList {
            expr: Box::new(Expr::col(cid(2))),
            list: vec![Expr::lit(Datum::str("v98")), Expr::lit(Datum::str("v12"))],
            negated: false,
        };
        assert_eq!(prune(&in_hit, IndexMode::ZoneMapBloom), PruneOutcome::Keep);
    }

    #[test]
    fn conjunction_and_disjunction() {
        let dead = Expr::binary(BinOp::Gt, Expr::col(cid(0)), Expr::int(100));
        let live = Expr::binary(BinOp::Lt, Expr::col(cid(0)), Expr::int(100));
        assert_eq!(
            prune(&dead.clone().and(live.clone()), IndexMode::ZoneMap),
            PruneOutcome::SkipZone
        );
        assert_eq!(
            prune(&dead.clone().or(live.clone()), IndexMode::ZoneMap),
            PruneOutcome::Keep
        );
        assert_eq!(
            prune(&dead.clone().or(dead), IndexMode::ZoneMap),
            PruneOutcome::SkipZone
        );
    }

    #[test]
    fn null_semantics() {
        // Comparisons with a NULL literal are never TRUE.
        let null_cmp = Expr::col(cid(0)).eq(Expr::lit(Datum::Null));
        assert_eq!(prune(&null_cmp, IndexMode::ZoneMap), PruneOutcome::SkipZone);
        // IS NULL prunes only when the chunk column has no nulls.
        let is_null_c0 = Expr::Unary {
            op: UnOp::IsNull,
            expr: Box::new(Expr::col(cid(0))),
        };
        assert_eq!(
            prune(&is_null_c0, IndexMode::ZoneMap),
            PruneOutcome::SkipZone
        );
        let is_null_c4 = Expr::Unary {
            op: UnOp::IsNull,
            expr: Box::new(Expr::col(cid(4))),
        };
        assert_eq!(prune(&is_null_c4, IndexMode::ZoneMap), PruneOutcome::Keep);
    }

    #[test]
    fn float_literal_coercion_probes_float_bloom_consistently() {
        // Float columns carry no bloom, so only the zone map applies — and
        // integer literals land on the same axis.
        let miss = Expr::binary(BinOp::Gt, Expr::col(cid(3)), Expr::int(1));
        assert_eq!(
            prune(&miss, IndexMode::ZoneMapBloom),
            PruneOutcome::SkipZone
        );
        // Int column probed with an exactly-representable float behaves
        // like the int literal on the zone axis.
        let f_eq = Expr::col(cid(0)).eq(Expr::lit(Datum::Float(500.0)));
        assert_eq!(
            prune(&f_eq, IndexMode::ZoneMapBloom),
            PruneOutcome::SkipZone
        );
    }

    #[test]
    fn unknown_shapes_keep_the_chunk() {
        let col_vs_col = Expr::col(cid(0)).eq(Expr::col(cid(1)));
        assert_eq!(
            prune(&col_vs_col, IndexMode::ZoneMapBloom),
            PruneOutcome::Keep
        );
        let unresolved = Expr::col(ColumnId::new(TableId(9), 77)).eq(Expr::int(1));
        let none_resolve = |_c: ColumnId| -> Option<usize> { None };
        assert_eq!(
            chunk_prune(
                &fixture(),
                &unresolved,
                &none_resolve,
                IndexMode::ZoneMapBloom
            ),
            PruneOutcome::Keep
        );
        let like = Expr::Like {
            expr: Box::new(Expr::col(cid(2))),
            pattern: "v%".into(),
            negated: false,
        };
        assert_eq!(prune(&like, IndexMode::ZoneMapBloom), PruneOutcome::Keep);
    }

    #[test]
    fn runtime_filter_pruning() {
        let idx = fixture();
        let ints = &idx.columns[0]; // zone [10, 19]
                                    // Disjoint build-key bounds prune via the zone map.
        assert_eq!(
            rf_chunk_prune(ints, Some((100.0, 200.0)), None, None, IndexMode::ZoneMap),
            PruneOutcome::SkipZone
        );
        assert_eq!(
            rf_chunk_prune(ints, Some((15.0, 200.0)), None, None, IndexMode::ZoneMap),
            PruneOutcome::Keep
        );
        assert_eq!(
            rf_chunk_prune(ints, Some((100.0, 200.0)), None, None, IndexMode::Off),
            PruneOutcome::Keep
        );
        // Exact key hashes prune via the chunk Bloom.
        let absent = hash_literal(&Datum::Int(999), DataType::Int64).unwrap();
        let present = hash_literal(&Datum::Int(12), DataType::Int64).unwrap();
        let pairs = |v: &[(u64, u64)]| KeyHashes::Pairs(v.to_vec());
        assert_eq!(
            rf_chunk_prune(
                ints,
                None,
                Some(&pairs(&[absent])),
                None,
                IndexMode::ZoneMapBloom
            ),
            PruneOutcome::SkipBloom
        );
        assert_eq!(
            rf_chunk_prune(
                ints,
                None,
                Some(&pairs(&[absent, present])),
                None,
                IndexMode::ZoneMapBloom
            ),
            PruneOutcome::Keep
        );
        // Empty build side prunes everything.
        assert_eq!(
            rf_chunk_prune(ints, None, Some(&pairs(&[])), None, IndexMode::ZoneMapBloom),
            PruneOutcome::SkipBloom
        );
        assert_eq!(
            rf_chunk_prune(
                ints,
                None,
                Some(&KeyHashes::FirstOnly(vec![])),
                None,
                IndexMode::ZoneMapBloom
            ),
            PruneOutcome::SkipBloom
        );
        // Bloom-tier evidence needs the bloom mode.
        assert_eq!(
            rf_chunk_prune(
                ints,
                None,
                Some(&pairs(&[absent])),
                None,
                IndexMode::ZoneMap
            ),
            PruneOutcome::Keep
        );
    }

    #[test]
    fn first_only_hashes_probe_blocked_chunk_filters_only() {
        let ints: Vec<i64> = (10..20).collect();
        let chunk = Chunk::new(vec![Arc::new(Column::Int64(ints, None))]).unwrap();
        let blocked_ci =
            &crate::build_chunk_index_layout(&chunk, bfq_bloom::BloomLayout::Blocked).columns[0];
        let standard_ci = &build_chunk_index(&chunk).columns[0];
        let absent = KeyHashes::FirstOnly(vec![hash_i64(999, BLOOM_SEED_1)]);
        let present = KeyHashes::FirstOnly(vec![hash_i64(12, BLOOM_SEED_1)]);
        // Against a blocked chunk filter, h1 alone is a full probe.
        assert_eq!(
            rf_chunk_prune(
                blocked_ci,
                None,
                Some(&absent),
                None,
                IndexMode::ZoneMapBloom
            ),
            PruneOutcome::SkipBloom
        );
        assert_eq!(
            rf_chunk_prune(
                blocked_ci,
                None,
                Some(&present),
                None,
                IndexMode::ZoneMapBloom
            ),
            PruneOutcome::Keep
        );
        // A standard chunk filter needs h2 the keys do not carry: no
        // conclusion, the chunk must be kept even for an absent key.
        assert_eq!(
            rf_chunk_prune(
                standard_ci,
                None,
                Some(&absent),
                None,
                IndexMode::ZoneMapBloom
            ),
            PruneOutcome::Keep
        );
    }

    #[test]
    fn runtime_filter_summary_tier() {
        let idx = fixture();
        let ints = &idx.columns[0]; // zone [10, 19]
        let col = |vals: Vec<i64>| Column::Int64(vals, None);
        // Clustered build keys far from the chunk's range, but with global
        // bounds that *cover* it — only the summary can prove the skip.
        // (Clusters {0..=5} and {10000..10100}: the chunk zone [10, 19]
        // falls in the unoccupied bucket gap between them.)
        let mut keys: Vec<i64> = (0..=5).collect();
        keys.extend(10_000..10_100);
        let summary = bfq_bloom::KeySummary::from_partitions(&[col(keys)]).unwrap();
        assert_eq!(
            rf_chunk_prune(
                ints,
                Some((0.0, 10_099.0)),
                None,
                Some(&summary),
                IndexMode::ZoneMap
            ),
            PruneOutcome::SkipSummary
        );
        // Build keys overlapping the chunk keep it.
        let overlapping = bfq_bloom::KeySummary::from_partitions(&[col((0..100).collect())]);
        assert_eq!(
            rf_chunk_prune(
                ints,
                Some((0.0, 99.0)),
                None,
                overlapping.as_ref(),
                IndexMode::ZoneMap
            ),
            PruneOutcome::Keep
        );
        // The summary tier is zone-style: disabled with IndexMode::Off.
        assert_eq!(
            rf_chunk_prune(ints, None, None, Some(&summary), IndexMode::Off),
            PruneOutcome::Keep
        );
    }

    #[test]
    fn all_null_column_prunes_everything() {
        let chunk = Chunk::new(vec![Arc::new(Column::nulls(DataType::Int64, 5))]).unwrap();
        let idx = build_chunk_index(&chunk);
        let cmp = Expr::binary(BinOp::Lt, Expr::col(cid(0)), Expr::int(100));
        assert_eq!(
            chunk_prune(&idx, &cmp, &resolve, IndexMode::ZoneMap),
            PruneOutcome::SkipZone
        );
        assert_eq!(
            rf_chunk_prune(
                &idx.columns[0],
                Some((0.0, 1.0)),
                None,
                None,
                IndexMode::ZoneMap
            ),
            PruneOutcome::SkipZone
        );
    }
}
