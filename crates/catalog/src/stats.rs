//! Exact statistics collection.
//!
//! A real DBMS samples; this engine computes exact statistics when a table is
//! registered. Exactness removes one confound when validating the paper's
//! claims about *cardinality estimation of intermediate plans* — base-table
//! stats are perfect, so estimation error comes only from the join/semi-join
//! models, which is what BF-CBO improves.

use bfq_common::{Datum, Result};
use bfq_storage::{Column, Table};

/// Statistics for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Number of distinct non-null values.
    pub ndv: f64,
    /// Fraction of rows that are NULL.
    pub null_frac: f64,
    /// Minimum non-null value, if the column is orderable and non-empty.
    pub min: Option<Datum>,
    /// Maximum non-null value, if the column is orderable and non-empty.
    pub max: Option<Datum>,
    /// Whether the table is physically clustered on this column: values are
    /// non-decreasing in row order with no NULLs. Rows matching any key
    /// range are then contiguous, so chunk-level zone maps prune every
    /// chunk outside the range — the estimator uses this to tighten
    /// runtime-filter pass fractions.
    pub clustered: bool,
}

impl ColumnStats {
    /// Stats for a column about which nothing is known (planner fallback).
    pub fn unknown() -> Self {
        ColumnStats {
            ndv: 1.0,
            null_frac: 0.0,
            min: None,
            max: None,
            clustered: false,
        }
    }
}

/// Statistics for one table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Exact row count.
    pub rows: f64,
    /// Per-column statistics, aligned with the schema.
    pub columns: Vec<ColumnStats>,
}

/// Compute exact statistics for every column of `table`.
pub fn compute_stats(table: &Table) -> Result<TableStats> {
    let chunk = table.to_single_chunk()?;
    let rows = chunk.rows() as f64;
    let mut columns = Vec::with_capacity(chunk.width());
    for col in chunk.columns() {
        columns.push(column_stats(col));
    }
    Ok(TableStats { rows, columns })
}

fn column_stats(col: &Column) -> ColumnStats {
    let rows = col.len();
    let nulls = col.null_count();
    let null_frac = if rows == 0 {
        0.0
    } else {
        nulls as f64 / rows as f64
    };
    let ndv = col.count_distinct() as f64;
    let (min, max, sorted) = min_max(col);
    ColumnStats {
        ndv,
        null_frac,
        min,
        max,
        clustered: sorted && nulls == 0 && rows > 0,
    }
}

fn min_max(col: &Column) -> (Option<Datum>, Option<Datum>, bool) {
    let mut min: Option<Datum> = None;
    let mut max: Option<Datum> = None;
    let mut sorted = true;
    let mut prev: Option<Datum> = None;
    for i in 0..col.len() {
        let v = col.get(i);
        if v.is_null() {
            continue;
        }
        if let Some(p) = &prev {
            if v.sql_cmp(p) == Some(std::cmp::Ordering::Less) {
                sorted = false;
            }
        }
        prev = Some(v.clone());
        match &min {
            None => min = Some(v.clone()),
            Some(m) => {
                if v.sql_cmp(m) == Some(std::cmp::Ordering::Less) {
                    min = Some(v.clone());
                }
            }
        }
        match &max {
            None => max = Some(v.clone()),
            Some(m) => {
                if v.sql_cmp(m) == Some(std::cmp::Ordering::Greater) {
                    max = Some(v.clone());
                }
            }
        }
    }
    (min, max, sorted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfq_common::DataType;
    use bfq_storage::{Bitmap, Chunk, Field, Schema};
    use std::sync::Arc;

    #[test]
    fn exact_stats_with_nulls() {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64)]));
        let col = Column::Int64(
            vec![5, 1, 5, 9],
            Some(Bitmap::from_bools([true, true, true, false])),
        );
        let table =
            Table::new("t", schema, vec![Chunk::new(vec![Arc::new(col)]).unwrap()]).unwrap();
        let stats = compute_stats(&table).unwrap();
        assert_eq!(stats.rows, 4.0);
        let c = &stats.columns[0];
        assert_eq!(c.ndv, 2.0);
        assert_eq!(c.null_frac, 0.25);
        assert_eq!(c.min, Some(Datum::Int(1)));
        assert_eq!(c.max, Some(Datum::Int(5)));
    }

    #[test]
    fn string_min_max() {
        let schema = Arc::new(Schema::new(vec![Field::new("s", DataType::Utf8)]));
        let col: bfq_storage::StrData = ["pear", "apple", "zebra"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let table = Table::new(
            "t",
            schema,
            vec![Chunk::new(vec![Arc::new(Column::Utf8(col, None))]).unwrap()],
        )
        .unwrap();
        let stats = compute_stats(&table).unwrap();
        assert_eq!(stats.columns[0].min, Some(Datum::str("apple")));
        assert_eq!(stats.columns[0].max, Some(Datum::str("zebra")));
        assert_eq!(stats.columns[0].ndv, 3.0);
    }

    #[test]
    fn empty_table_stats() {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64)]));
        let table = Table::new("t", schema, vec![]).unwrap();
        let stats = compute_stats(&table).unwrap();
        assert_eq!(stats.rows, 0.0);
        assert_eq!(stats.columns[0].ndv, 0.0);
        assert_eq!(stats.columns[0].min, None);
    }

    #[test]
    fn unknown_stats_default() {
        let u = ColumnStats::unknown();
        assert_eq!(u.ndv, 1.0);
        assert!(u.min.is_none());
    }
}
