//! Catalog: table registry, statistics and key constraints.
//!
//! The optimizer consumes three things from here:
//! * per-table row counts and per-column NDV/min/max statistics
//!   ([`TableStats`], [`ColumnStats`]) — computed exactly at load time,
//!   standing in for the ANALYZE pipeline of a production system;
//! * uniqueness (primary key / unique constraints), which powers the
//!   FK→lossless-PK pruning of Bloom filter candidates (paper Heuristic 3);
//! * foreign-key edges, declared "in compliance with TPC-H documentation"
//!   (paper §4.1).

pub mod stats;

use std::collections::HashMap;
use std::sync::Arc;

use bfq_common::{BfqError, ColumnId, DataType, Result, TableId};
use bfq_index::{BloomLayout, TableIndex};
use bfq_storage::{SchemaRef, Table};

pub use stats::{compute_stats, ColumnStats, TableStats};

/// A declared foreign-key relationship between single columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForeignKey {
    /// Referencing column (the FK side).
    pub column: ColumnId,
    /// Referenced column (the PK/unique side).
    pub references: ColumnId,
}

/// Everything the system knows about one registered table.
#[derive(Debug, Clone)]
pub struct TableMeta {
    /// The table's id (its index in the catalog).
    pub id: TableId,
    /// Registered name.
    pub name: String,
    /// Column names/types.
    pub schema: SchemaRef,
    /// Collected statistics.
    pub stats: TableStats,
    /// Ordinals of columns with a single-column uniqueness guarantee.
    pub unique_columns: Vec<u32>,
}

impl TableMeta {
    /// Whether column `index` is unique (PK or unique constraint).
    pub fn is_unique(&self, index: u32) -> bool {
        self.unique_columns.contains(&index)
    }
}

/// The catalog: metadata plus the in-memory data of every registered table.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    metas: Vec<TableMeta>,
    data: Vec<Arc<Table>>,
    indexes: Vec<Arc<TableIndex>>,
    by_name: HashMap<String, TableId>,
    foreign_keys: Vec<ForeignKey>,
    /// Bumped on every registration or replacement. Plan caches key on
    /// this so no cached plan can outlive the schema/statistics it was
    /// optimized against.
    version: u64,
    /// Bit-placement layout for per-chunk Bloom indexes built by
    /// [`Catalog::register`] / [`Catalog::replace`].
    index_bloom_layout: BloomLayout,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// The catalog's version: incremented by [`Catalog::register`] and
    /// [`Catalog::replace`]. Two catalogs with equal versions that share a
    /// lineage hold identical table sets.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Select the bit-placement layout for per-chunk Bloom indexes built by
    /// subsequent registrations (already-built indexes are untouched —
    /// probing is layout-agnostic, so mixed layouts stay correct).
    pub fn set_index_bloom_layout(&mut self, layout: BloomLayout) {
        self.index_bloom_layout = layout;
    }

    /// The layout used for newly built per-chunk Bloom indexes.
    pub fn index_bloom_layout(&self) -> BloomLayout {
        self.index_bloom_layout
    }

    /// Switch the chunk-Bloom bit-placement layout *and* migrate every live
    /// table's chunk index to it, unlike [`Catalog::set_index_bloom_layout`]
    /// which only affects future registrations. Table data and statistics
    /// are untouched; only the per-chunk Bloom bit placement changes.
    /// Bumps [`Catalog::version`] so cached plans (whose scan-cost
    /// estimates may embed index sizes) are invalidated. Returns the number
    /// of tables reindexed; a no-op (version untouched) when `layout` is
    /// already active.
    pub fn reindex_bloom_layout(&mut self, layout: BloomLayout) -> usize {
        if layout == self.index_bloom_layout {
            return 0;
        }
        self.index_bloom_layout = layout;
        for (slot, table) in self.data.iter().enumerate() {
            self.indexes[slot] = Arc::new(TableIndex::build_layout(table, layout));
        }
        self.version += 1;
        self.data.len()
    }

    /// Register a table, computing exact statistics from its data.
    ///
    /// `unique_columns` lists ordinals with a uniqueness guarantee. Returns
    /// the assigned [`TableId`] and bumps [`Catalog::version`].
    pub fn register(&mut self, table: Table, unique_columns: Vec<u32>) -> Result<TableId> {
        let name = table.name().to_string();
        if self.by_name.contains_key(&name) {
            return Err(BfqError::Catalog(format!(
                "table `{name}` already registered"
            )));
        }
        for &u in &unique_columns {
            if u as usize >= table.schema().len() {
                return Err(BfqError::Catalog(format!(
                    "unique column ordinal {u} out of range for `{name}`"
                )));
            }
        }
        let id = TableId(self.metas.len() as u32);
        let stats = compute_stats(&table)?;
        // Per-chunk zone maps and Bloom indexes, built once at load time —
        // the ANALYZE-adjacent step a columnar store runs while sealing
        // segments. Consultation is gated by the session's `IndexMode`.
        let index = TableIndex::build_layout(&table, self.index_bloom_layout);
        self.metas.push(TableMeta {
            id,
            name: name.clone(),
            schema: table.schema().clone(),
            stats,
            unique_columns,
        });
        self.data.push(Arc::new(table));
        self.indexes.push(Arc::new(index));
        self.by_name.insert(name, id);
        self.version += 1;
        Ok(id)
    }

    /// Replace a registered table's data in place (same name, same
    /// [`TableId`]), recomputing statistics and the per-chunk index, and
    /// bumping [`Catalog::version`]. The new schema must be provided by
    /// the table itself; `unique_columns` replaces the old declaration.
    pub fn replace(&mut self, table: Table, unique_columns: Vec<u32>) -> Result<TableId> {
        let name = table.name().to_string();
        let id = *self
            .by_name
            .get(&name)
            .ok_or_else(|| BfqError::Catalog(format!("no table named `{name}` to replace")))?;
        for &u in &unique_columns {
            if u as usize >= table.schema().len() {
                return Err(BfqError::Catalog(format!(
                    "unique column ordinal {u} out of range for `{name}`"
                )));
            }
        }
        let stats = compute_stats(&table)?;
        let index = TableIndex::build_layout(&table, self.index_bloom_layout);
        let slot = id.0 as usize;
        self.metas[slot] = TableMeta {
            id,
            name,
            schema: table.schema().clone(),
            stats,
            unique_columns,
        };
        self.data[slot] = Arc::new(table);
        self.indexes[slot] = Arc::new(index);
        self.version += 1;
        Ok(id)
    }

    /// Declare a foreign key `from → to`. Both columns must exist and `to`
    /// must be unique on its table.
    pub fn add_foreign_key(&mut self, from: ColumnId, to: ColumnId) -> Result<()> {
        let to_meta = self.meta(to.table)?;
        if !to_meta.is_unique(to.index) {
            return Err(BfqError::Catalog(format!(
                "foreign key target {to} is not declared unique"
            )));
        }
        let from_meta = self.meta(from.table)?;
        if from.index as usize >= from_meta.schema.len() {
            return Err(BfqError::Catalog(format!(
                "foreign key source {from} out of range"
            )));
        }
        self.foreign_keys.push(ForeignKey {
            column: from,
            references: to,
        });
        Ok(())
    }

    /// Metadata by id.
    pub fn meta(&self, id: TableId) -> Result<&TableMeta> {
        self.metas
            .get(id.0 as usize)
            .ok_or_else(|| BfqError::Catalog(format!("no table with id {id}")))
    }

    /// Metadata by name.
    pub fn meta_by_name(&self, name: &str) -> Result<&TableMeta> {
        let id = self
            .by_name
            .get(name)
            .ok_or_else(|| BfqError::Catalog(format!("no table named `{name}`")))?;
        self.meta(*id)
    }

    /// Table data by id.
    pub fn data(&self, id: TableId) -> Result<&Arc<Table>> {
        self.data
            .get(id.0 as usize)
            .ok_or_else(|| BfqError::Catalog(format!("no table with id {id}")))
    }

    /// Per-chunk zone-map/Bloom index of a table, if registered.
    pub fn index(&self, id: TableId) -> Option<&Arc<TableIndex>> {
        self.indexes.get(id.0 as usize)
    }

    /// All registered tables.
    pub fn tables(&self) -> &[TableMeta] {
        &self.metas
    }

    /// Whether `from → to` is a declared foreign key.
    pub fn is_foreign_key(&self, from: ColumnId, to: ColumnId) -> bool {
        self.foreign_keys
            .iter()
            .any(|fk| fk.column == from && fk.references == to)
    }

    /// All declared foreign keys.
    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.foreign_keys
    }

    /// Column statistics for `col`.
    pub fn column_stats(&self, col: ColumnId) -> Result<&ColumnStats> {
        let meta = self.meta(col.table)?;
        meta.stats
            .columns
            .get(col.index as usize)
            .ok_or_else(|| BfqError::Catalog(format!("no stats for column {col}")))
    }

    /// The data type of `col`.
    pub fn column_type(&self, col: ColumnId) -> Result<DataType> {
        let meta = self.meta(col.table)?;
        meta.schema
            .fields()
            .get(col.index as usize)
            .map(|f| f.data_type)
            .ok_or_else(|| BfqError::Catalog(format!("no column {col}")))
    }

    /// The name of `col` as `table.column`.
    pub fn column_name(&self, col: ColumnId) -> String {
        match self.meta(col.table) {
            Ok(meta) => {
                let cname = meta
                    .schema
                    .fields()
                    .get(col.index as usize)
                    .map(|f| f.name.as_str())
                    .unwrap_or("?");
                format!("{}.{}", meta.name, cname)
            }
            Err(_) => col.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfq_common::DataType;
    use bfq_storage::{Chunk, Column, Field, Schema};

    fn small_table(name: &str, keys: &[i64]) -> Table {
        let schema = Arc::new(Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("v", DataType::Float64),
        ]));
        let chunk = Chunk::new(vec![
            Arc::new(Column::Int64(keys.to_vec(), None)),
            Arc::new(Column::Float64(
                keys.iter().map(|&k| k as f64 * 1.5).collect(),
                None,
            )),
        ])
        .unwrap();
        Table::new(name, schema, vec![chunk]).unwrap()
    }

    #[test]
    fn register_and_lookup() {
        let mut cat = Catalog::new();
        assert_eq!(cat.version(), 0);
        let id = cat.register(small_table("a", &[1, 2, 3]), vec![0]).unwrap();
        assert_eq!(id, TableId(0));
        assert_eq!(cat.version(), 1);
        assert_eq!(cat.meta_by_name("a").unwrap().id, id);
        assert_eq!(cat.data(id).unwrap().rows(), 3);
        assert!(cat.meta_by_name("missing").is_err());
        assert!(cat.register(small_table("a", &[1]), vec![]).is_err());
        assert_eq!(cat.version(), 1, "failed registration does not bump");
    }

    #[test]
    fn replace_keeps_id_and_bumps_version() {
        let mut cat = Catalog::new();
        let id = cat.register(small_table("a", &[1, 2, 3]), vec![0]).unwrap();
        let _b = cat.register(small_table("b", &[9]), vec![0]).unwrap();
        assert_eq!(cat.version(), 2);
        let rid = cat
            .replace(small_table("a", &[4, 5, 6, 7]), vec![0])
            .unwrap();
        assert_eq!(rid, id, "replacement keeps the table id");
        assert_eq!(cat.version(), 3);
        assert_eq!(cat.data(id).unwrap().rows(), 4);
        assert_eq!(cat.meta(id).unwrap().stats.rows, 4.0);
        // Fresh per-chunk index for the new data.
        let ci = cat.index(id).unwrap().chunk(0).unwrap();
        assert_eq!(ci.columns[0].zone.map(|z| (z.min, z.max)), Some((4.0, 7.0)));
        // Replacing an unknown table errors without bumping.
        assert!(cat.replace(small_table("zzz", &[1]), vec![]).is_err());
        assert_eq!(cat.version(), 3);
    }

    #[test]
    fn chunk_index_built_on_register() {
        let mut cat = Catalog::new();
        let id = cat.register(small_table("a", &[1, 2, 3]), vec![0]).unwrap();
        let index = cat.index(id).expect("index built at register");
        assert_eq!(index.len(), 1);
        let ci = index.chunk(0).unwrap();
        assert_eq!(ci.rows, 3);
        // Key column: zone map + bloom. Float column: zone map only.
        assert_eq!(ci.columns[0].zone.map(|z| (z.min, z.max)), Some((1.0, 3.0)));
        assert!(ci.columns[0].bloom.is_some());
        assert!(ci.columns[1].zone.is_some());
        assert!(ci.columns[1].bloom.is_none());
        assert!(cat.index(TableId(9)).is_none());
    }

    #[test]
    fn stats_computed_on_register() {
        let mut cat = Catalog::new();
        let id = cat
            .register(small_table("a", &[1, 2, 2, 3]), vec![])
            .unwrap();
        let meta = cat.meta(id).unwrap();
        assert_eq!(meta.stats.rows, 4.0);
        assert_eq!(meta.stats.columns[0].ndv, 3.0);
        let cs = cat.column_stats(ColumnId::new(id, 0)).unwrap();
        assert_eq!(cs.min.as_ref().and_then(|d| d.as_i64()), Some(1));
        assert_eq!(cs.max.as_ref().and_then(|d| d.as_i64()), Some(3));
    }

    #[test]
    fn foreign_keys_require_unique_target() {
        let mut cat = Catalog::new();
        let pk = cat
            .register(small_table("dim", &[1, 2, 3]), vec![0])
            .unwrap();
        let fk = cat
            .register(small_table("fact", &[1, 1, 2, 3, 3]), vec![])
            .unwrap();
        let from = ColumnId::new(fk, 0);
        let to = ColumnId::new(pk, 0);
        cat.add_foreign_key(from, to).unwrap();
        assert!(cat.is_foreign_key(from, to));
        assert!(!cat.is_foreign_key(to, from));
        // Non-unique target rejected.
        assert!(cat.add_foreign_key(to, ColumnId::new(fk, 0)).is_err());
    }

    #[test]
    fn reindex_bloom_layout_migrates_live_indexes() {
        use bfq_expr::Expr;
        use bfq_index::IndexMode;

        // Four chunks with disjoint key ranges, so every probe below has a
        // layout-independent answer: zone maps exclude the three chunks
        // whose range misses the key, and Bloom filters never produce a
        // false negative for the one chunk that holds it.
        let schema = Arc::new(Schema::new(vec![Field::new("k", DataType::Int64)]));
        let chunks: Vec<Chunk> = (0..4)
            .map(|c| {
                let keys: Vec<i64> = (c * 100..c * 100 + 100).collect();
                Chunk::new(vec![Arc::new(Column::Int64(keys, None))]).unwrap()
            })
            .collect();
        let table = Table::new("t", schema, chunks).unwrap();

        let mut cat = Catalog::new();
        assert_eq!(cat.index_bloom_layout(), BloomLayout::default());
        cat.set_index_bloom_layout(BloomLayout::Standard);
        let id = cat.register(table, vec![0]).unwrap();
        let version_before = cat.version();
        let col = ColumnId::new(id, 0);
        let resolve = |c: ColumnId| Some(c.index as usize);
        let probes: Vec<i64> = vec![-5, 0, 17, 150, 299, 301, 399, 1000];
        let decide = |cat: &Catalog| -> Vec<(usize, usize)> {
            let index = cat.index(id).unwrap();
            probes
                .iter()
                .map(|&k| {
                    let pred = Expr::col(col).eq(Expr::lit(bfq_common::Datum::Int(k)));
                    index.matching_rows(&pred, &resolve, IndexMode::ZoneMapBloom)
                })
                .collect()
        };
        let before = decide(&cat);

        // Same layout: nothing to migrate, version untouched.
        assert_eq!(cat.reindex_bloom_layout(BloomLayout::Standard), 0);
        assert_eq!(cat.version(), version_before);

        // Migrate to blocked layout: indexes are rebuilt in place.
        assert_eq!(cat.reindex_bloom_layout(BloomLayout::Blocked), 1);
        assert_eq!(cat.index_bloom_layout(), BloomLayout::Blocked);
        assert_eq!(cat.version(), version_before + 1);
        let ci = cat.index(id).unwrap().chunk(0).unwrap();
        assert_eq!(
            ci.columns[0].bloom.as_ref().map(|b| b.layout()),
            Some(BloomLayout::Blocked)
        );
        assert_eq!(decide(&cat), before, "skip decisions must not change");

        // And back again.
        assert_eq!(cat.reindex_bloom_layout(BloomLayout::Standard), 1);
        assert_eq!(cat.version(), version_before + 2);
        assert_eq!(decide(&cat), before);
    }

    #[test]
    fn column_metadata_accessors() {
        let mut cat = Catalog::new();
        let id = cat.register(small_table("a", &[1]), vec![0]).unwrap();
        assert_eq!(
            cat.column_type(ColumnId::new(id, 1)).unwrap(),
            DataType::Float64
        );
        assert_eq!(cat.column_name(ColumnId::new(id, 0)), "a.k");
        assert!(cat.column_type(ColumnId::new(id, 9)).is_err());
        assert!(cat.meta(id).unwrap().is_unique(0));
        assert!(!cat.meta(id).unwrap().is_unique(1));
    }
}
