//! Mutable builders that accumulate rows and seal them into immutable
//! columns/chunks.

use std::sync::Arc;

use bfq_common::{BfqError, DataType, Datum, Result};

use crate::bitmap::Bitmap;
use crate::chunk::Chunk;
use crate::column::{Column, StrData};
use crate::table::SchemaRef;

/// Accumulates values of one type; tracks nulls lazily.
#[derive(Debug)]
pub enum ColumnBuilder {
    /// Int64 accumulator.
    Int64(Vec<i64>, Vec<bool>, bool),
    /// Float64 accumulator.
    Float64(Vec<f64>, Vec<bool>, bool),
    /// Utf8 accumulator.
    Utf8(StrData, Vec<bool>, bool),
    /// Bool accumulator.
    Bool(Vec<bool>, Vec<bool>, bool),
    /// Date accumulator.
    Date(Vec<i32>, Vec<bool>, bool),
}

impl ColumnBuilder {
    /// A builder for `dt` with reserved capacity.
    pub fn with_capacity(dt: DataType, capacity: usize) -> Self {
        match dt {
            DataType::Int64 => ColumnBuilder::Int64(
                Vec::with_capacity(capacity),
                Vec::with_capacity(capacity),
                false,
            ),
            DataType::Float64 => ColumnBuilder::Float64(
                Vec::with_capacity(capacity),
                Vec::with_capacity(capacity),
                false,
            ),
            DataType::Utf8 => ColumnBuilder::Utf8(
                StrData::with_capacity(capacity, 16),
                Vec::with_capacity(capacity),
                false,
            ),
            DataType::Bool => ColumnBuilder::Bool(
                Vec::with_capacity(capacity),
                Vec::with_capacity(capacity),
                false,
            ),
            DataType::Date => ColumnBuilder::Date(
                Vec::with_capacity(capacity),
                Vec::with_capacity(capacity),
                false,
            ),
        }
    }

    /// A builder for `dt` with default capacity.
    pub fn new(dt: DataType) -> Self {
        Self::with_capacity(dt, 0)
    }

    /// The builder's type.
    pub fn data_type(&self) -> DataType {
        match self {
            ColumnBuilder::Int64(..) => DataType::Int64,
            ColumnBuilder::Float64(..) => DataType::Float64,
            ColumnBuilder::Utf8(..) => DataType::Utf8,
            ColumnBuilder::Bool(..) => DataType::Bool,
            ColumnBuilder::Date(..) => DataType::Date,
        }
    }

    /// Rows accumulated so far.
    pub fn len(&self) -> usize {
        match self {
            ColumnBuilder::Int64(v, ..) => v.len(),
            ColumnBuilder::Float64(v, ..) => v.len(),
            ColumnBuilder::Utf8(v, ..) => v.len(),
            ColumnBuilder::Bool(v, ..) => v.len(),
            ColumnBuilder::Date(v, ..) => v.len(),
        }
    }

    /// Whether the builder has no rows yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a typed i64 (panics if wrong type — generator hot path).
    #[inline]
    pub fn push_i64(&mut self, v: i64) {
        match self {
            ColumnBuilder::Int64(vals, valid, _) => {
                vals.push(v);
                valid.push(true);
            }
            _ => panic!("push_i64 on {:?} builder", self.data_type()),
        }
    }

    /// Append a typed f64.
    #[inline]
    pub fn push_f64(&mut self, v: f64) {
        match self {
            ColumnBuilder::Float64(vals, valid, _) => {
                vals.push(v);
                valid.push(true);
            }
            _ => panic!("push_f64 on {:?} builder", self.data_type()),
        }
    }

    /// Append a typed string.
    #[inline]
    pub fn push_str(&mut self, v: &str) {
        match self {
            ColumnBuilder::Utf8(vals, valid, _) => {
                vals.push(v);
                valid.push(true);
            }
            _ => panic!("push_str on {:?} builder", self.data_type()),
        }
    }

    /// Append a typed date (epoch days).
    #[inline]
    pub fn push_date(&mut self, v: i32) {
        match self {
            ColumnBuilder::Date(vals, valid, _) => {
                vals.push(v);
                valid.push(true);
            }
            _ => panic!("push_date on {:?} builder", self.data_type()),
        }
    }

    /// Append a typed bool.
    #[inline]
    pub fn push_bool(&mut self, v: bool) {
        match self {
            ColumnBuilder::Bool(vals, valid, _) => {
                vals.push(v);
                valid.push(true);
            }
            _ => panic!("push_bool on {:?} builder", self.data_type()),
        }
    }

    /// Append a null.
    pub fn push_null(&mut self) {
        match self {
            ColumnBuilder::Int64(vals, valid, has_null) => {
                vals.push(0);
                valid.push(false);
                *has_null = true;
            }
            ColumnBuilder::Float64(vals, valid, has_null) => {
                vals.push(0.0);
                valid.push(false);
                *has_null = true;
            }
            ColumnBuilder::Utf8(vals, valid, has_null) => {
                vals.push("");
                valid.push(false);
                *has_null = true;
            }
            ColumnBuilder::Bool(vals, valid, has_null) => {
                vals.push(false);
                valid.push(false);
                *has_null = true;
            }
            ColumnBuilder::Date(vals, valid, has_null) => {
                vals.push(0);
                valid.push(false);
                *has_null = true;
            }
        }
    }

    /// Append a [`Datum`], coercing compatible numerics.
    pub fn push_datum(&mut self, d: &Datum) -> Result<()> {
        if d.is_null() {
            self.push_null();
            return Ok(());
        }
        match (self.data_type(), d) {
            (DataType::Int64, Datum::Int(v)) => self.push_i64(*v),
            (DataType::Int64, Datum::Date(v)) => self.push_i64(*v as i64),
            (DataType::Float64, Datum::Float(v)) => self.push_f64(*v),
            (DataType::Float64, Datum::Int(v)) => self.push_f64(*v as f64),
            (DataType::Utf8, Datum::Str(s)) => self.push_str(s),
            (DataType::Bool, Datum::Bool(b)) => self.push_bool(*b),
            (DataType::Date, Datum::Date(v)) => self.push_date(*v),
            (DataType::Date, Datum::Int(v)) => self.push_date(*v as i32),
            (dt, d) => return Err(BfqError::Type(format!("cannot append {d} to {dt} column"))),
        }
        Ok(())
    }

    /// Seal into an immutable column.
    pub fn finish(self) -> Column {
        fn validity(valid: Vec<bool>, has_null: bool) -> Option<Bitmap> {
            has_null.then(|| Bitmap::from_bools(valid))
        }
        match self {
            ColumnBuilder::Int64(v, valid, has_null) => Column::Int64(v, validity(valid, has_null)),
            ColumnBuilder::Float64(v, valid, has_null) => {
                Column::Float64(v, validity(valid, has_null))
            }
            ColumnBuilder::Utf8(v, valid, has_null) => Column::Utf8(v, validity(valid, has_null)),
            ColumnBuilder::Bool(v, valid, has_null) => Column::Bool(v, validity(valid, has_null)),
            ColumnBuilder::Date(v, valid, has_null) => Column::Date(v, validity(valid, has_null)),
        }
    }
}

/// Builds a [`Chunk`] row by row against a schema.
#[derive(Debug)]
pub struct ChunkBuilder {
    builders: Vec<ColumnBuilder>,
}

impl ChunkBuilder {
    /// A builder matching `schema` with reserved capacity.
    pub fn with_capacity(schema: &SchemaRef, capacity: usize) -> Self {
        ChunkBuilder {
            builders: schema
                .fields()
                .iter()
                .map(|f| ColumnBuilder::with_capacity(f.data_type, capacity))
                .collect(),
        }
    }

    /// A builder matching `schema`.
    pub fn new(schema: &SchemaRef) -> Self {
        Self::with_capacity(schema, 0)
    }

    /// Rows accumulated so far.
    pub fn len(&self) -> usize {
        self.builders.first().map_or(0, |b| b.len())
    }

    /// Whether the builder has no rows yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Mutable access to the column builders (typed bulk appends).
    pub fn columns_mut(&mut self) -> &mut [ColumnBuilder] {
        &mut self.builders
    }

    /// Append one row of datums.
    pub fn push_row(&mut self, row: &[Datum]) -> Result<()> {
        if row.len() != self.builders.len() {
            return Err(BfqError::internal(format!(
                "row width {} != schema width {}",
                row.len(),
                self.builders.len()
            )));
        }
        for (b, d) in self.builders.iter_mut().zip(row) {
            b.push_datum(d)?;
        }
        Ok(())
    }

    /// Seal into a chunk.
    pub fn finish(self) -> Result<Chunk> {
        let columns = self
            .builders
            .into_iter()
            .map(|b| Arc::new(b.finish()))
            .collect();
        Chunk::new(columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Field, Schema};

    #[test]
    fn typed_pushes_and_finish() {
        let mut b = ColumnBuilder::new(DataType::Int64);
        b.push_i64(1);
        b.push_null();
        b.push_i64(3);
        let c = b.finish();
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0), Datum::Int(1));
        assert_eq!(c.get(1), Datum::Null);
        assert_eq!(c.null_count(), 1);
    }

    #[test]
    fn no_nulls_means_no_validity() {
        let mut b = ColumnBuilder::new(DataType::Float64);
        b.push_f64(1.0);
        let c = b.finish();
        assert!(c.validity().is_none());
    }

    #[test]
    fn datum_coercions() {
        let mut b = ColumnBuilder::new(DataType::Float64);
        b.push_datum(&Datum::Int(2)).unwrap();
        assert_eq!(b.len(), 1);
        let mut b = ColumnBuilder::new(DataType::Int64);
        assert!(b.push_datum(&Datum::str("x")).is_err());
        let mut b = ColumnBuilder::new(DataType::Date);
        b.push_datum(&Datum::Int(100)).unwrap();
        assert_eq!(b.finish().get(0), Datum::Date(100));
    }

    #[test]
    fn chunk_builder_roundtrip() {
        let schema = Arc::new(Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Utf8),
        ]));
        let mut cb = ChunkBuilder::new(&schema);
        cb.push_row(&[Datum::Int(1), Datum::str("x")]).unwrap();
        cb.push_row(&[Datum::Int(2), Datum::Null]).unwrap();
        assert_eq!(cb.len(), 2);
        let chunk = cb.finish().unwrap();
        assert_eq!(chunk.rows(), 2);
        assert_eq!(chunk.row(1), vec![Datum::Int(2), Datum::Null]);
    }

    #[test]
    fn chunk_builder_rejects_bad_width() {
        let schema = Arc::new(Schema::new(vec![Field::new("a", DataType::Int64)]));
        let mut cb = ChunkBuilder::new(&schema);
        assert!(cb.push_row(&[Datum::Int(1), Datum::Int(2)]).is_err());
    }
}
