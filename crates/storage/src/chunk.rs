//! [`Chunk`]: a batch of rows as parallel columns.

use std::sync::Arc;

use bfq_common::{BfqError, Datum, Result};

use crate::column::{Column, ColumnRef};

/// Default number of rows per chunk produced by builders and scans.
pub const DEFAULT_CHUNK_ROWS: usize = 8192;

/// A horizontal slice of a relation: equal-length immutable columns.
#[derive(Debug, Clone)]
pub struct Chunk {
    columns: Vec<ColumnRef>,
    rows: usize,
}

impl Chunk {
    /// Build a chunk from columns, validating equal lengths.
    pub fn new(columns: Vec<ColumnRef>) -> Result<Self> {
        let rows = columns.first().map_or(0, |c| c.len());
        for (i, c) in columns.iter().enumerate() {
            if c.len() != rows {
                return Err(BfqError::internal(format!(
                    "chunk column {i} has {} rows, expected {rows}",
                    c.len()
                )));
            }
        }
        Ok(Chunk { columns, rows })
    }

    /// A chunk with zero columns but a row count (used by `SELECT COUNT(*)`
    /// style plans that need cardinality without payload).
    pub fn of_rows(rows: usize) -> Self {
        Chunk {
            columns: Vec::new(),
            rows,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Whether the chunk holds zero rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Borrow column `i`.
    pub fn column(&self, i: usize) -> &ColumnRef {
        &self.columns[i]
    }

    /// All columns.
    pub fn columns(&self) -> &[ColumnRef] {
        &self.columns
    }

    /// Row `i` as datums (test/result use).
    pub fn row(&self, i: usize) -> Vec<Datum> {
        self.columns.iter().map(|c| c.get(i)).collect()
    }

    /// Gather rows by selection vector.
    pub fn take(&self, sel: &[u32]) -> Chunk {
        let columns = self.columns.iter().map(|c| Arc::new(c.take(sel))).collect();
        Chunk {
            columns,
            rows: sel.len(),
        }
    }

    /// Keep a subset of columns, in the given order.
    pub fn project(&self, indices: &[usize]) -> Chunk {
        let columns: Vec<ColumnRef> = indices
            .iter()
            .map(|&i| Arc::clone(&self.columns[i]))
            .collect();
        Chunk {
            columns,
            rows: self.rows,
        }
    }

    /// Concatenate same-schema chunks into one.
    pub fn concat(parts: &[Chunk]) -> Result<Chunk> {
        if parts.is_empty() {
            return Err(BfqError::internal("concat of zero chunks"));
        }
        let width = parts[0].width();
        if width == 0 {
            return Ok(Chunk::of_rows(parts.iter().map(|c| c.rows()).sum()));
        }
        let mut columns = Vec::with_capacity(width);
        for col_idx in 0..width {
            let cols: Vec<&Column> = parts.iter().map(|p| p.column(col_idx).as_ref()).collect();
            columns.push(Arc::new(Column::concat(&cols)));
        }
        Chunk::new(columns)
    }

    /// Horizontally glue two chunks with equal row counts (join output).
    pub fn zip(left: &Chunk, right: &Chunk) -> Result<Chunk> {
        if left.rows() != right.rows() {
            return Err(BfqError::internal(format!(
                "zip row mismatch: {} vs {}",
                left.rows(),
                right.rows()
            )));
        }
        let mut columns = Vec::with_capacity(left.width() + right.width());
        columns.extend(left.columns.iter().cloned());
        columns.extend(right.columns.iter().cloned());
        Ok(Chunk {
            columns,
            rows: left.rows(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk2() -> Chunk {
        Chunk::new(vec![
            Arc::new(Column::Int64(vec![1, 2, 3], None)),
            Arc::new(Column::Float64(vec![1.5, 2.5, 3.5], None)),
        ])
        .unwrap()
    }

    #[test]
    fn construction_validates_lengths() {
        let err = Chunk::new(vec![
            Arc::new(Column::Int64(vec![1], None)),
            Arc::new(Column::Int64(vec![1, 2], None)),
        ]);
        assert!(err.is_err());
        let ok = chunk2();
        assert_eq!(ok.rows(), 3);
        assert_eq!(ok.width(), 2);
    }

    #[test]
    fn row_take_project() {
        let c = chunk2();
        assert_eq!(c.row(1), vec![Datum::Int(2), Datum::Float(2.5)]);
        let t = c.take(&[2, 0]);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.row(0), vec![Datum::Int(3), Datum::Float(3.5)]);
        let p = c.project(&[1]);
        assert_eq!(p.width(), 1);
        assert_eq!(p.row(0), vec![Datum::Float(1.5)]);
    }

    #[test]
    fn concat_and_zip() {
        let a = chunk2();
        let b = chunk2();
        let cat = Chunk::concat(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(cat.rows(), 6);
        let z = Chunk::zip(&a, &b).unwrap();
        assert_eq!(z.width(), 4);
        assert_eq!(z.rows(), 3);
        assert!(Chunk::zip(&a, &cat).is_err());
    }

    #[test]
    fn zero_width_row_count_chunks() {
        let c = Chunk::of_rows(10);
        assert_eq!(c.rows(), 10);
        assert_eq!(c.width(), 0);
        let cat = Chunk::concat(&[Chunk::of_rows(3), Chunk::of_rows(4)]).unwrap();
        assert_eq!(cat.rows(), 7);
    }
}
