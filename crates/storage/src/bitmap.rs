//! A packed bitmap used for null validity and predicate results.

/// A fixed-length bitmap; bit `i` set means "valid"/"true".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// A bitmap of `len` bits, all set to `value`.
    pub fn new(len: usize, value: bool) -> Self {
        let nwords = len.div_ceil(64);
        let fill = if value { u64::MAX } else { 0 };
        let mut bm = Bitmap {
            words: vec![fill; nwords],
            len,
        };
        bm.mask_tail();
        bm
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Set bit `i` to `value`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        debug_assert!(i < self.len);
        let w = &mut self.words[i / 64];
        let bit = 1u64 << (i % 64);
        if value {
            *w |= bit;
        } else {
            *w &= !bit;
        }
    }

    /// Number of set bits.
    pub fn count_set(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// In-place intersection with another bitmap of the same length.
    pub fn and_with(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// In-place union with another bitmap of the same length.
    pub fn or_with(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// In-place complement.
    pub fn negate(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// Indices of set bits, ascending — the engine's selection vectors.
    pub fn set_indices(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.count_set());
        for (wi, &w) in self.words.iter().enumerate() {
            let mut bits = w;
            while bits != 0 {
                let tz = bits.trailing_zeros() as usize;
                out.push((wi * 64 + tz) as u32);
                bits &= bits - 1;
            }
        }
        out
    }

    /// Clear any bits beyond `len` so counts stay exact.
    fn mask_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// Build from a bool iterator.
    pub fn from_bools<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let bools: Vec<bool> = iter.into_iter().collect();
        let mut bm = Bitmap::new(bools.len(), false);
        for (i, b) in bools.iter().enumerate() {
            if *b {
                bm.set(i, true);
            }
        }
        bm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_all_true_counts_exactly() {
        let bm = Bitmap::new(70, true);
        assert_eq!(bm.len(), 70);
        assert_eq!(bm.count_set(), 70);
        let bm = Bitmap::new(70, false);
        assert_eq!(bm.count_set(), 0);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut bm = Bitmap::new(130, false);
        bm.set(0, true);
        bm.set(64, true);
        bm.set(129, true);
        assert!(bm.get(0) && bm.get(64) && bm.get(129));
        assert!(!bm.get(1) && !bm.get(63) && !bm.get(128));
        assert_eq!(bm.count_set(), 3);
        bm.set(64, false);
        assert!(!bm.get(64));
        assert_eq!(bm.count_set(), 2);
    }

    #[test]
    fn boolean_algebra() {
        let a = Bitmap::from_bools([true, true, false, false]);
        let b = Bitmap::from_bools([true, false, true, false]);
        let mut and = a.clone();
        and.and_with(&b);
        assert_eq!(and.set_indices(), vec![0]);
        let mut or = a.clone();
        or.or_with(&b);
        assert_eq!(or.set_indices(), vec![0, 1, 2]);
        let mut neg = a.clone();
        neg.negate();
        assert_eq!(neg.set_indices(), vec![2, 3]);
        // Negation must not leak bits past len.
        assert_eq!(neg.count_set(), 2);
    }

    #[test]
    fn set_indices_ascending_across_words() {
        let mut bm = Bitmap::new(200, false);
        for i in [5usize, 63, 64, 128, 199] {
            bm.set(i, true);
        }
        assert_eq!(bm.set_indices(), vec![5, 63, 64, 128, 199]);
    }

    #[test]
    fn empty_bitmap() {
        let bm = Bitmap::new(0, true);
        assert!(bm.is_empty());
        assert_eq!(bm.count_set(), 0);
        assert!(bm.set_indices().is_empty());
    }
}
