//! Typed, immutable columns.

use std::sync::Arc;

use bfq_common::hash::{hash_bytes, hash_f64, hash_i64};
use bfq_common::{DataType, Datum};

use crate::bitmap::Bitmap;

/// Shared handle to an immutable column.
pub type ColumnRef = Arc<Column>;

/// Compact string storage: all payloads in one buffer plus `n+1` offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrData {
    buf: String,
    offsets: Vec<u32>,
}

impl StrData {
    /// An empty string container.
    pub fn new() -> Self {
        StrData {
            buf: String::new(),
            offsets: vec![0],
        }
    }

    /// Pre-size for `rows` strings of roughly `avg_len` bytes.
    pub fn with_capacity(rows: usize, avg_len: usize) -> Self {
        let mut offsets = Vec::with_capacity(rows + 1);
        offsets.push(0);
        StrData {
            buf: String::with_capacity(rows * avg_len),
            offsets,
        }
    }

    /// Append one string.
    pub fn push(&mut self, s: &str) {
        self.buf.push_str(s);
        self.offsets.push(self.buf.len() as u32);
    }

    /// Number of strings.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the container holds zero strings.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrow string `i`.
    #[inline]
    pub fn get(&self, i: usize) -> &str {
        let start = self.offsets[i] as usize;
        let end = self.offsets[i + 1] as usize;
        &self.buf[start..end]
    }

    /// Iterate all strings.
    pub fn iter(&self) -> impl Iterator<Item = &str> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Total payload bytes (for memory accounting).
    pub fn payload_bytes(&self) -> usize {
        self.buf.len()
    }
}

impl Default for StrData {
    fn default() -> Self {
        Self::new()
    }
}

impl FromIterator<String> for StrData {
    fn from_iter<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let mut s = StrData::new();
        for item in iter {
            s.push(&item);
        }
        s
    }
}

/// An immutable typed column with optional null validity.
///
/// `validity` bit `i` set means row `i` is non-null; `None` means the column
/// has no nulls at all (the common case — TPC-H base data is null-free; nulls
/// arise only from outer joins).
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// 64-bit integers.
    Int64(Vec<i64>, Option<Bitmap>),
    /// 64-bit floats.
    Float64(Vec<f64>, Option<Bitmap>),
    /// UTF-8 strings.
    Utf8(StrData, Option<Bitmap>),
    /// Booleans, stored unpacked for simple vectorized logic.
    Bool(Vec<bool>, Option<Bitmap>),
    /// Dates as days since the epoch.
    Date(Vec<i32>, Option<Bitmap>),
}

impl Column {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int64(v, _) => v.len(),
            Column::Float64(v, _) => v.len(),
            Column::Utf8(v, _) => v.len(),
            Column::Bool(v, _) => v.len(),
            Column::Date(v, _) => v.len(),
        }
    }

    /// Whether the column has zero rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Int64(..) => DataType::Int64,
            Column::Float64(..) => DataType::Float64,
            Column::Utf8(..) => DataType::Utf8,
            Column::Bool(..) => DataType::Bool,
            Column::Date(..) => DataType::Date,
        }
    }

    /// The validity bitmap, if the column may contain nulls.
    pub fn validity(&self) -> Option<&Bitmap> {
        match self {
            Column::Int64(_, v)
            | Column::Float64(_, v)
            | Column::Utf8(_, v)
            | Column::Bool(_, v)
            | Column::Date(_, v) => v.as_ref(),
        }
    }

    /// Whether row `i` is null.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        match self.validity() {
            Some(bm) => !bm.get(i),
            None => false,
        }
    }

    /// Number of null rows.
    pub fn null_count(&self) -> usize {
        match self.validity() {
            Some(bm) => bm.len() - bm.count_set(),
            None => 0,
        }
    }

    /// Read row `i` as a [`Datum`] (boundary/test use; hot paths use slices).
    pub fn get(&self, i: usize) -> Datum {
        if self.is_null(i) {
            return Datum::Null;
        }
        match self {
            Column::Int64(v, _) => Datum::Int(v[i]),
            Column::Float64(v, _) => Datum::Float(v[i]),
            Column::Utf8(v, _) => Datum::str(v.get(i)),
            Column::Bool(v, _) => Datum::Bool(v[i]),
            Column::Date(v, _) => Datum::Date(v[i]),
        }
    }

    /// Integer values slice, if this is an Int64 column.
    pub fn as_i64(&self) -> Option<&[i64]> {
        match self {
            Column::Int64(v, _) => Some(v),
            _ => None,
        }
    }

    /// Float values slice, if this is a Float64 column.
    pub fn as_f64(&self) -> Option<&[f64]> {
        match self {
            Column::Float64(v, _) => Some(v),
            _ => None,
        }
    }

    /// Date values slice, if this is a Date column.
    pub fn as_date(&self) -> Option<&[i32]> {
        match self {
            Column::Date(v, _) => Some(v),
            _ => None,
        }
    }

    /// Bool values slice, if this is a Bool column.
    pub fn as_bool(&self) -> Option<&[bool]> {
        match self {
            Column::Bool(v, _) => Some(v),
            _ => None,
        }
    }

    /// String container, if this is a Utf8 column.
    pub fn as_str(&self) -> Option<&StrData> {
        match self {
            Column::Utf8(v, _) => Some(v),
            _ => None,
        }
    }

    /// Gather rows by selection vector into a new column.
    pub fn take(&self, sel: &[u32]) -> Column {
        let gather_validity = |v: &Option<Bitmap>| -> Option<Bitmap> {
            v.as_ref()
                .map(|bm| Bitmap::from_bools(sel.iter().map(|&i| bm.get(i as usize))))
        };
        match self {
            Column::Int64(v, val) => Column::Int64(
                sel.iter().map(|&i| v[i as usize]).collect(),
                gather_validity(val),
            ),
            Column::Float64(v, val) => Column::Float64(
                sel.iter().map(|&i| v[i as usize]).collect(),
                gather_validity(val),
            ),
            Column::Utf8(v, val) => {
                let mut out = StrData::with_capacity(
                    sel.len(),
                    if v.is_empty() {
                        0
                    } else {
                        v.payload_bytes() / v.len().max(1)
                    },
                );
                for &i in sel {
                    out.push(v.get(i as usize));
                }
                Column::Utf8(out, gather_validity(val))
            }
            Column::Bool(v, val) => Column::Bool(
                sel.iter().map(|&i| v[i as usize]).collect(),
                gather_validity(val),
            ),
            Column::Date(v, val) => Column::Date(
                sel.iter().map(|&i| v[i as usize]).collect(),
                gather_validity(val),
            ),
        }
    }

    /// Concatenate columns of the same type into one.
    pub fn concat(parts: &[&Column]) -> Column {
        assert!(!parts.is_empty(), "concat of zero columns");
        let total: usize = parts.iter().map(|c| c.len()).sum();
        let any_nulls = parts.iter().any(|c| c.validity().is_some());
        let build_validity = || -> Option<Bitmap> {
            if !any_nulls {
                return None;
            }
            let mut bm = Bitmap::new(total, true);
            let mut base = 0usize;
            for part in parts {
                if let Some(v) = part.validity() {
                    for i in 0..part.len() {
                        if !v.get(i) {
                            bm.set(base + i, false);
                        }
                    }
                }
                base += part.len();
            }
            Some(bm)
        };
        match parts[0] {
            Column::Int64(..) => {
                let mut out = Vec::with_capacity(total);
                for p in parts {
                    out.extend_from_slice(p.as_i64().expect("type mismatch in concat"));
                }
                Column::Int64(out, build_validity())
            }
            Column::Float64(..) => {
                let mut out = Vec::with_capacity(total);
                for p in parts {
                    out.extend_from_slice(p.as_f64().expect("type mismatch in concat"));
                }
                Column::Float64(out, build_validity())
            }
            Column::Utf8(..) => {
                let mut out = StrData::new();
                for p in parts {
                    for s in p.as_str().expect("type mismatch in concat").iter() {
                        out.push(s);
                    }
                }
                Column::Utf8(out, build_validity())
            }
            Column::Bool(..) => {
                let mut out = Vec::with_capacity(total);
                for p in parts {
                    out.extend_from_slice(p.as_bool().expect("type mismatch in concat"));
                }
                Column::Bool(out, build_validity())
            }
            Column::Date(..) => {
                let mut out = Vec::with_capacity(total);
                for p in parts {
                    out.extend_from_slice(p.as_date().expect("type mismatch in concat"));
                }
                Column::Date(out, build_validity())
            }
        }
    }

    /// Hash every row with `seed`, writing into `out` (resized to fit).
    ///
    /// Null rows hash to a fixed sentinel; equality logic elsewhere ensures
    /// nulls never *match*, the sentinel just keeps vector shapes aligned.
    pub fn hash_into(&self, seed: u64, out: &mut Vec<u64>) {
        const NULL_SENTINEL: u64 = 0x6e75_6c6c_6e75_6c6c; // "nullnull"
        out.clear();
        out.reserve(self.len());
        match self {
            Column::Int64(v, _) => out.extend(v.iter().map(|&x| hash_i64(x, seed))),
            Column::Float64(v, _) => out.extend(v.iter().map(|&x| hash_f64(x, seed))),
            Column::Utf8(v, _) => out.extend(v.iter().map(|s| hash_bytes(s.as_bytes(), seed))),
            Column::Bool(v, _) => out.extend(v.iter().map(|&b| hash_i64(b as i64, seed))),
            Column::Date(v, _) => out.extend(v.iter().map(|&x| hash_i64(x as i64, seed))),
        }
        if let Some(bm) = self.validity() {
            for (i, h) in out.iter_mut().enumerate() {
                if !bm.get(i) {
                    *h = NULL_SENTINEL;
                }
            }
        }
    }

    /// Hash a single row with `seed` (must agree with [`Column::hash_into`]).
    #[inline]
    pub fn hash_one(&self, i: usize, seed: u64) -> u64 {
        const NULL_SENTINEL: u64 = 0x6e75_6c6c_6e75_6c6c; // "nullnull"
        if self.is_null(i) {
            return NULL_SENTINEL;
        }
        match self {
            Column::Int64(v, _) => hash_i64(v[i], seed),
            Column::Float64(v, _) => hash_f64(v[i], seed),
            Column::Utf8(v, _) => hash_bytes(v.get(i).as_bytes(), seed),
            Column::Bool(v, _) => hash_i64(v[i] as i64, seed),
            Column::Date(v, _) => hash_i64(v[i] as i64, seed),
        }
    }

    /// An all-null column of `len` rows and the given type.
    pub fn nulls(dt: DataType, len: usize) -> Column {
        let bm = Some(Bitmap::new(len, false));
        match dt {
            DataType::Int64 => Column::Int64(vec![0; len], bm),
            DataType::Float64 => Column::Float64(vec![0.0; len], bm),
            DataType::Utf8 => {
                let mut s = StrData::new();
                for _ in 0..len {
                    s.push("");
                }
                Column::Utf8(s, bm)
            }
            DataType::Bool => Column::Bool(vec![false; len], bm),
            DataType::Date => Column::Date(vec![0; len], bm),
        }
    }

    /// Min/max of the non-null values on the shared numeric axis (ints,
    /// floats, dates — the same axis the selectivity estimator uses).
    /// `None` for non-numeric columns or when every row is null.
    pub fn min_max_axis(&self) -> Option<(f64, f64)> {
        fn fold<T: Copy>(
            vals: &[T],
            validity: Option<&Bitmap>,
            to_f64: impl Fn(T) -> f64,
        ) -> Option<(f64, f64)> {
            let mut acc: Option<(f64, f64)> = None;
            for (i, &v) in vals.iter().enumerate() {
                if validity.is_some_and(|bm| !bm.get(i)) {
                    continue;
                }
                let x = to_f64(v);
                acc = Some(match acc {
                    None => (x, x),
                    Some((lo, hi)) => (lo.min(x), hi.max(x)),
                });
            }
            acc
        }
        match self {
            Column::Int64(v, val) => fold(v, val.as_ref(), |x| x as f64),
            Column::Float64(v, val) => fold(v, val.as_ref(), |x| x),
            Column::Date(v, val) => fold(v, val.as_ref(), |x| x as f64),
            Column::Utf8(..) | Column::Bool(..) => None,
        }
    }

    /// Count distinct non-null values (exact; used to build statistics).
    pub fn count_distinct(&self) -> usize {
        use std::collections::HashSet;
        match self {
            Column::Int64(v, val) => {
                let mut set = HashSet::new();
                for (i, x) in v.iter().enumerate() {
                    if val.as_ref().is_none_or(|bm| bm.get(i)) {
                        set.insert(*x);
                    }
                }
                set.len()
            }
            Column::Date(v, val) => {
                let mut set = HashSet::new();
                for (i, x) in v.iter().enumerate() {
                    if val.as_ref().is_none_or(|bm| bm.get(i)) {
                        set.insert(*x);
                    }
                }
                set.len()
            }
            Column::Float64(v, val) => {
                let mut set = HashSet::new();
                for (i, x) in v.iter().enumerate() {
                    if val.as_ref().is_none_or(|bm| bm.get(i)) {
                        set.insert(x.to_bits());
                    }
                }
                set.len()
            }
            Column::Bool(v, val) => {
                let mut seen = [false; 2];
                for (i, x) in v.iter().enumerate() {
                    if val.as_ref().is_none_or(|bm| bm.get(i)) {
                        seen[*x as usize] = true;
                    }
                }
                seen.iter().filter(|&&b| b).count()
            }
            Column::Utf8(v, val) => {
                let mut set = HashSet::new();
                for i in 0..v.len() {
                    if val.as_ref().is_none_or(|bm| bm.get(i)) {
                        set.insert(v.get(i));
                    }
                }
                set.len()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_col(vals: &[i64]) -> Column {
        Column::Int64(vals.to_vec(), None)
    }

    #[test]
    fn basic_accessors() {
        let c = int_col(&[1, 2, 3]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.data_type(), DataType::Int64);
        assert_eq!(c.get(1), Datum::Int(2));
        assert_eq!(c.as_i64(), Some(&[1i64, 2, 3][..]));
        assert_eq!(c.null_count(), 0);
    }

    #[test]
    fn str_data_layout() {
        let mut s = StrData::new();
        s.push("hello");
        s.push("");
        s.push("world");
        assert_eq!(s.len(), 3);
        assert_eq!(s.get(0), "hello");
        assert_eq!(s.get(1), "");
        assert_eq!(s.get(2), "world");
        assert_eq!(s.iter().collect::<Vec<_>>(), vec!["hello", "", "world"]);
        assert_eq!(s.payload_bytes(), 10);
    }

    #[test]
    fn take_gathers_and_preserves_nulls() {
        let validity = Bitmap::from_bools([true, false, true, true]);
        let c = Column::Int64(vec![10, 20, 30, 40], Some(validity));
        let t = c.take(&[3, 1, 0]);
        assert_eq!(t.get(0), Datum::Int(40));
        assert_eq!(t.get(1), Datum::Null);
        assert_eq!(t.get(2), Datum::Int(10));
    }

    #[test]
    fn take_strings() {
        let s: StrData = ["a", "bb", "ccc"].iter().map(|s| s.to_string()).collect();
        let c = Column::Utf8(s, None);
        let t = c.take(&[2, 0]);
        assert_eq!(t.get(0), Datum::str("ccc"));
        assert_eq!(t.get(1), Datum::str("a"));
    }

    #[test]
    fn concat_mixed_validity() {
        let a = int_col(&[1, 2]);
        let b = Column::Int64(vec![3, 4], Some(Bitmap::from_bools([false, true])));
        let c = Column::concat(&[&a, &b]);
        assert_eq!(c.len(), 4);
        assert_eq!(c.get(2), Datum::Null);
        assert_eq!(c.get(3), Datum::Int(4));
        assert_eq!(c.null_count(), 1);
    }

    #[test]
    fn hashes_are_stable_and_distinguish_values() {
        let c = int_col(&[1, 2, 1]);
        let mut h = Vec::new();
        c.hash_into(7, &mut h);
        assert_eq!(h.len(), 3);
        assert_eq!(h[0], h[2]);
        assert_ne!(h[0], h[1]);
    }

    #[test]
    fn date_hash_matches_int_semantics() {
        // Dates and ints with the same numeric value must hash identically so
        // date-keyed joins against int columns work.
        let d = Column::Date(vec![100], None);
        let i = int_col(&[100]);
        let (mut hd, mut hi) = (Vec::new(), Vec::new());
        d.hash_into(3, &mut hd);
        i.hash_into(3, &mut hi);
        assert_eq!(hd, hi);
    }

    #[test]
    fn nulls_column_is_fully_null() {
        let c = Column::nulls(DataType::Utf8, 3);
        assert_eq!(c.len(), 3);
        assert_eq!(c.null_count(), 3);
        assert_eq!(c.get(0), Datum::Null);
    }

    #[test]
    fn min_max_axis_respects_type_and_nulls() {
        assert_eq!(int_col(&[3, -1, 7]).min_max_axis(), Some((-1.0, 7.0)));
        assert_eq!(
            Column::Date(vec![10, 5], None).min_max_axis(),
            Some((5.0, 10.0))
        );
        let with_nulls = Column::Int64(
            vec![100, 1, 2],
            Some(Bitmap::from_bools([false, true, true])),
        );
        assert_eq!(with_nulls.min_max_axis(), Some((1.0, 2.0)));
        assert_eq!(Column::nulls(DataType::Int64, 3).min_max_axis(), None);
        let s: StrData = ["a"].iter().map(|s| s.to_string()).collect();
        assert_eq!(Column::Utf8(s, None).min_max_axis(), None);
    }

    #[test]
    fn count_distinct_ignores_nulls() {
        let c = Column::Int64(
            vec![1, 1, 2, 99],
            Some(Bitmap::from_bools([true, true, true, false])),
        );
        assert_eq!(c.count_distinct(), 2);
        let s: StrData = ["a", "a", "b"].iter().map(|s| s.to_string()).collect();
        assert_eq!(Column::Utf8(s, None).count_distinct(), 2);
        assert_eq!(Column::Bool(vec![true, true], None).count_distinct(), 1);
    }
}
