//! In-memory columnar storage for the `bfq` engine.
//!
//! Data flows through the engine as [`Chunk`]s — fixed-width batches of
//! typed, immutable [`Column`]s shared via `Arc`. Base tables ([`Table`]) are
//! lists of chunks plus a schema; the executor assigns chunks to DOP workers.
//!
//! Design points:
//! * Columns are append-only builders until sealed; sealed columns are
//!   immutable and cheaply shareable, so operators never copy input data.
//! * Strings use an offsets-into-one-buffer layout ([`StrData`]) rather than
//!   `Vec<String>`: one allocation per column, cache-friendly scans.
//! * Null handling uses an optional validity [`Bitmap`]; columns without
//!   nulls pay nothing.

pub mod bitmap;
pub mod builder;
pub mod chunk;
pub mod column;
pub mod table;

pub use bitmap::Bitmap;
pub use builder::{ChunkBuilder, ColumnBuilder};
pub use chunk::Chunk;
pub use column::{Column, ColumnRef, StrData};
pub use table::{Field, Schema, SchemaRef, Table};
