//! Schemas and base tables.

use std::sync::Arc;

use bfq_common::{BfqError, DataType, Result};

use crate::chunk::Chunk;

/// One named, typed column in a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name (lower-case by convention).
    pub name: String,
    /// Column type.
    pub data_type: DataType,
}

impl Field {
    /// Construct a field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into(),
            data_type,
        }
    }
}

/// An ordered list of fields.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

/// Shared schema handle.
pub type SchemaRef = Arc<Schema>;

impl Schema {
    /// Build a schema from fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// All fields.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has zero fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Field by ordinal.
    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// Ordinal of the field named `name`, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }
}

/// An in-memory base table: a schema plus a list of chunks.
///
/// Chunks are the unit of parallelism — the executor deals chunks to DOP
/// workers round-robin, which is this engine's stand-in for the paper's
/// partitioned storage.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: SchemaRef,
    chunks: Vec<Chunk>,
    rows: usize,
}

impl Table {
    /// Create a table, validating every chunk against the schema width.
    pub fn new(name: impl Into<String>, schema: SchemaRef, chunks: Vec<Chunk>) -> Result<Self> {
        let name = name.into();
        for (i, chunk) in chunks.iter().enumerate() {
            if chunk.width() != schema.len() {
                return Err(BfqError::internal(format!(
                    "table `{name}` chunk {i}: width {} != schema width {}",
                    chunk.width(),
                    schema.len()
                )));
            }
            for (c, field) in chunk.columns().iter().zip(schema.fields()) {
                if c.data_type() != field.data_type {
                    return Err(BfqError::internal(format!(
                        "table `{name}` chunk {i} column `{}`: type {} != schema type {}",
                        field.name,
                        c.data_type(),
                        field.data_type
                    )));
                }
            }
        }
        let rows = chunks.iter().map(|c| c.rows()).sum();
        Ok(Table {
            name,
            schema,
            chunks,
            rows,
        })
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// All chunks.
    pub fn chunks(&self) -> &[Chunk] {
        &self.chunks
    }

    /// Total row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Materialize the whole table as one chunk (test/stats use).
    pub fn to_single_chunk(&self) -> Result<Chunk> {
        if self.chunks.is_empty() {
            // Represent emptiness with correctly-typed empty columns.
            let cols = self
                .schema
                .fields()
                .iter()
                .map(|f| Arc::new(crate::column::Column::nulls(f.data_type, 0)))
                .collect();
            return Chunk::new(cols);
        }
        Chunk::concat(&self.chunks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn schema() -> SchemaRef {
        Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("name", DataType::Utf8),
        ]))
    }

    fn chunk(ids: &[i64], names: &[&str]) -> Chunk {
        Chunk::new(vec![
            Arc::new(Column::Int64(ids.to_vec(), None)),
            Arc::new(Column::Utf8(
                names.iter().map(|s| s.to_string()).collect(),
                None,
            )),
        ])
        .unwrap()
    }

    #[test]
    fn schema_lookup() {
        let s = schema();
        assert_eq!(s.len(), 2);
        assert_eq!(s.index_of("name"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert_eq!(s.field(0).name, "id");
    }

    #[test]
    fn table_validates_chunks() {
        let t = Table::new(
            "t",
            schema(),
            vec![chunk(&[1, 2], &["a", "b"]), chunk(&[3], &["c"])],
        )
        .unwrap();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.chunks().len(), 2);
        let single = t.to_single_chunk().unwrap();
        assert_eq!(single.rows(), 3);

        // Wrong width rejected.
        let bad = Chunk::new(vec![Arc::new(Column::Int64(vec![1], None))]).unwrap();
        assert!(Table::new("t", schema(), vec![bad]).is_err());
    }

    #[test]
    fn type_mismatch_rejected() {
        let bad = Chunk::new(vec![
            Arc::new(Column::Int64(vec![1], None)),
            Arc::new(Column::Int64(vec![1], None)),
        ])
        .unwrap();
        let err = Table::new("t", schema(), vec![bad]).unwrap_err();
        assert!(err.to_string().contains("type"));
    }

    #[test]
    fn empty_table_single_chunk() {
        let t = Table::new("t", schema(), vec![]).unwrap();
        assert_eq!(t.rows(), 0);
        let c = t.to_single_chunk().unwrap();
        assert_eq!(c.rows(), 0);
        assert_eq!(c.width(), 2);
    }
}
