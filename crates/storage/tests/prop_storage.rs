//! Property-based tests for the storage layer: selection/gather, bitmap
//! algebra, concat, and hash stability.

use std::sync::Arc;

use bfq_storage::{Bitmap, Chunk, Column, StrData};
use proptest::prelude::*;

proptest! {
    /// take() returns exactly the selected rows, in selection order.
    #[test]
    fn take_matches_rowwise(vals in proptest::collection::vec(-1000i64..1000, 1..200)) {
        let col = Column::Int64(vals.clone(), None);
        let sel: Vec<u32> = (0..vals.len() as u32).rev().step_by(3).collect();
        let taken = col.take(&sel);
        prop_assert_eq!(taken.len(), sel.len());
        for (out_i, &src_i) in sel.iter().enumerate() {
            prop_assert_eq!(taken.get(out_i), col.get(src_i as usize));
        }
    }

    /// Gather preserves null positions.
    #[test]
    fn take_preserves_nulls(
        vals in proptest::collection::vec(0i64..100, 2..100),
        null_every in 2usize..5,
    ) {
        let validity = Bitmap::from_bools((0..vals.len()).map(|i| i % null_every != 0));
        let col = Column::Int64(vals.clone(), Some(validity));
        let sel: Vec<u32> = (0..vals.len() as u32).collect();
        let taken = col.take(&sel);
        for i in 0..vals.len() {
            prop_assert_eq!(taken.is_null(i), i % null_every == 0);
        }
    }

    /// Bitmap set_indices agrees with get() and respects algebra laws.
    #[test]
    fn bitmap_algebra_laws(bools in proptest::collection::vec(any::<bool>(), 0..300)) {
        let bm = Bitmap::from_bools(bools.clone());
        let idx = bm.set_indices();
        prop_assert_eq!(idx.len(), bm.count_set());
        for &i in &idx {
            prop_assert!(bm.get(i as usize));
        }
        // Double negation is identity.
        let mut neg2 = bm.clone();
        neg2.negate();
        neg2.negate();
        prop_assert_eq!(&neg2, &bm);
        // a AND a == a; a OR a == a.
        let mut anded = bm.clone();
        anded.and_with(&bm);
        prop_assert_eq!(&anded, &bm);
        let mut ored = bm.clone();
        ored.or_with(&bm);
        prop_assert_eq!(&ored, &bm);
    }

    /// Concat of a split equals the original.
    #[test]
    fn concat_roundtrip(
        vals in proptest::collection::vec(-500i64..500, 2..120),
        cut_frac in 0.1f64..0.9,
    ) {
        let cut = ((vals.len() as f64 * cut_frac) as usize).clamp(1, vals.len() - 1);
        let a = Column::Int64(vals[..cut].to_vec(), None);
        let b = Column::Int64(vals[cut..].to_vec(), None);
        let joined = Column::concat(&[&a, &b]);
        prop_assert_eq!(joined.as_i64().unwrap(), &vals[..]);
    }

    /// Row hashes are stable across chunking (a value's hash does not depend
    /// on its position), and hash_one agrees with hash_into.
    #[test]
    fn hash_position_independent(
        vals in proptest::collection::vec(-1000i64..1000, 1..100),
        seed in any::<u64>(),
    ) {
        let col = Column::Int64(vals.clone(), None);
        let mut bulk = Vec::new();
        col.hash_into(seed, &mut bulk);
        for (i, &v) in vals.iter().enumerate() {
            prop_assert_eq!(bulk[i], col.hash_one(i, seed));
            let single = Column::Int64(vec![v], None);
            prop_assert_eq!(single.hash_one(0, seed), bulk[i]);
        }
    }

    /// String columns round-trip through StrData and survive selection.
    #[test]
    fn string_column_roundtrip(strings in proptest::collection::vec(".{0,12}", 1..60)) {
        let sd: StrData = strings.iter().cloned().collect();
        let col = Column::Utf8(sd, None);
        for (i, s) in strings.iter().enumerate() {
            prop_assert_eq!(col.as_str().unwrap().get(i), s.as_str());
        }
        let sel: Vec<u32> = (0..strings.len() as u32).rev().collect();
        let rev = col.take(&sel);
        for (i, s) in strings.iter().rev().enumerate() {
            prop_assert_eq!(rev.as_str().unwrap().get(i), s.as_str());
        }
    }

    /// Chunk::zip then project recovers both halves.
    #[test]
    fn zip_project_inverse(vals in proptest::collection::vec(0i64..100, 1..80)) {
        let a = Chunk::new(vec![Arc::new(Column::Int64(vals.clone(), None))]).unwrap();
        let doubled: Vec<i64> = vals.iter().map(|v| v * 2).collect();
        let b = Chunk::new(vec![Arc::new(Column::Int64(doubled.clone(), None))]).unwrap();
        let z = Chunk::zip(&a, &b).unwrap();
        prop_assert_eq!(z.width(), 2);
        let left = z.project(&[0]);
        let right = z.project(&[1]);
        prop_assert_eq!(left.column(0).as_i64().unwrap(), &vals[..]);
        prop_assert_eq!(right.column(0).as_i64().unwrap(), &doubled[..]);
    }
}
