//! Flat open-addressing join table ↔ chained-map oracle equivalence.
//!
//! The flat `BuildTable` (power-of-two directory + contiguous chain arena,
//! batched branch-free probing) replaced the seed's `HashMap<u64, Vec<u32>>`
//! chained table. Its contract: for any build-side duplicate distribution —
//! including all-duplicate and empty builds, null keys on either side, and
//! lying NDV hints — the batched probe must emit exactly the candidate
//! pairs of the scalar chained-map probe, in the same order. Verified here
//! three ways:
//!
//! 1. **Property test** over arbitrary build/probe multisets, null masks
//!    and NDV hints: `probe_partition` (flat, batched) ==
//!    `probe_partition_chained` (scalar oracle) for every join kind,
//!    chunk-for-chunk and datum-for-datum.
//! 2. **Edge cases** the generator can't hit deterministically: empty
//!    build, all-null build, every-row-identical build.
//! 3. **TPC-H spot check**: joins through the whole engine return
//!    identical result checksums whichever `bloom_layout` runs, at
//!    several dops, against the eager oracle. (The exhaustive TPC-H ×
//!    index-mode × dop matrix lives in `pipeline_equivalence.rs` and
//!    `bloom_layout_equivalence.rs` and now exercises the flat table on
//!    every path.)

mod common;

use std::sync::Arc;

use bfq::common::{ColumnId, DataType, Datum, TableId};
use bfq::exec::join::{probe_partition, probe_partition_chained, BuildTable, ChainedTable};
use bfq::exec::util::MorselScratch;
use bfq::expr::Layout;
use bfq::plan::JoinKind;
use bfq::prelude::*;
use bfq::storage::{Bitmap, Column};
use bfq::tpch;
use common::rows_of;
use proptest::prelude::*;

fn int_chunk(vals: &[i64], nulls: &[bool]) -> Chunk {
    let validity = if nulls.iter().any(|&n| n) {
        Some(Bitmap::from_bools(
            nulls.iter().map(|&n| !n).collect::<Vec<_>>(),
        ))
    } else {
        None
    };
    Chunk::new(vec![Arc::new(Column::Int64(vals.to_vec(), validity))]).unwrap()
}

fn joined_layout() -> Layout {
    Layout::new(vec![
        ColumnId::new(TableId(0), 0),
        ColumnId::new(TableId(1), 0),
    ])
}

fn exact_rows(chunks: &[Chunk]) -> Vec<Vec<Datum>> {
    chunks
        .iter()
        .flat_map(|c| (0..c.rows()).map(|i| c.row(i)))
        .collect()
}

/// Probe the same outer chunks against a flat table and the chained-map
/// oracle built over the same rows; both must emit identical output.
fn assert_probe_equivalence(
    build_vals: &[i64],
    build_nulls: &[bool],
    probe_vals: &[i64],
    probe_nulls: &[bool],
    ndv_hint: Option<usize>,
) {
    let build_chunk = int_chunk(build_vals, build_nulls);
    let probe_chunks = [int_chunk(probe_vals, probe_nulls)];
    let flat = BuildTable::build_with_ndv(build_chunk.clone(), vec![0], ndv_hint);
    let chained = ChainedTable::build(build_chunk, vec![0]);
    assert_eq!(flat.len(), chained.len(), "indexed row counts differ");
    for kind in [
        JoinKind::Inner,
        JoinKind::LeftOuter,
        JoinKind::Semi,
        JoinKind::Anti,
    ] {
        let mut scratch = MorselScratch::new();
        let got = probe_partition(
            &probe_chunks,
            &flat,
            &[0],
            kind,
            &None,
            &joined_layout(),
            &[DataType::Int64],
            &mut scratch,
        )
        .unwrap();
        let mut oracle_scratch = MorselScratch::new();
        let want = probe_partition_chained(
            &probe_chunks,
            &chained,
            &[0],
            kind,
            &None,
            &joined_layout(),
            &[DataType::Int64],
            &mut oracle_scratch,
        )
        .unwrap();
        assert_eq!(
            exact_rows(&got),
            exact_rows(&want),
            "{kind:?}: flat probe differs from chained oracle"
        );
        // Verified pairs equal the chained oracle's emitted matches; the
        // candidate count may only exceed it (directory hash collisions).
        assert!(
            scratch.join_candidates >= scratch.join_verified,
            "{kind:?}: candidates below verified"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any duplicate distribution: keys drawn from a small domain so
    /// chains get long, with ~10% null masks on both sides and an
    /// arbitrary (often wrong) NDV hint (0 = no hint).
    #[test]
    fn flat_probe_equals_chained_probe(
        build in proptest::collection::vec((0i64..32, 0u8..10), 0..300),
        probe in proptest::collection::vec((-4i64..36, 0u8..10), 0..200),
        hint in 0usize..64,
    ) {
        let (build_vals, build_nulls): (Vec<i64>, Vec<bool>) =
            build.into_iter().map(|(v, n)| (v, n == 0)).unzip();
        let (probe_vals, probe_nulls): (Vec<i64>, Vec<bool>) =
            probe.into_iter().map(|(v, n)| (v, n == 0)).unzip();
        let hint = if hint == 0 { None } else { Some(hint) };
        assert_probe_equivalence(&build_vals, &build_nulls, &probe_vals, &probe_nulls, hint);
    }

    /// High-cardinality distribution: mostly-unique keys exercise the
    /// branch-free first-probe path and directory growth.
    #[test]
    fn flat_probe_equals_chained_probe_unique_keys(
        build in proptest::collection::vec(0i64..1_000_000, 0..400),
        probe in proptest::collection::vec(0i64..1_000_000, 0..200),
    ) {
        let bn = vec![false; build.len()];
        let pn = vec![false; probe.len()];
        assert_probe_equivalence(&build, &bn, &probe, &pn, None);
    }
}

#[test]
fn edge_cases_empty_all_null_all_duplicate() {
    // Empty build side.
    assert_probe_equivalence(&[], &[], &[1, 2, 3], &[false; 3], None);
    assert_probe_equivalence(&[], &[], &[], &[], Some(7));
    // All build keys null: table indexes nothing, everything misses.
    assert_probe_equivalence(&[1, 2, 3], &[true; 3], &[1, 2, 3], &[false; 3], None);
    // All-duplicate build: one directory slot, one maximal chain.
    let dup = vec![42i64; 500];
    assert_probe_equivalence(&dup, &vec![false; 500], &[42, 41, 42], &[false; 3], Some(1));
    // All probe keys null: no output pairs for inner/semi, full anti.
    assert_probe_equivalence(&[1, 2, 3], &[false; 3], &[1, 2], &[true; 2], None);
}

#[test]
fn multi_key_probe_equivalence() {
    // Two key columns with correlated duplicates; the second column
    // disambiguates hash-equal candidates via the verification kernel.
    let k1: Vec<i64> = (0..200).map(|i| i % 5).collect();
    let k2: Vec<i64> = (0..200).map(|i| i % 7).collect();
    let build_chunk = Chunk::new(vec![
        Arc::new(Column::Int64(k1.clone(), None)),
        Arc::new(Column::Int64(k2.clone(), None)),
    ])
    .unwrap();
    let probe_chunks = [Chunk::new(vec![
        Arc::new(Column::Int64((0..40).map(|i| i % 6).collect(), None)),
        Arc::new(Column::Int64((0..40).map(|i| i % 8).collect(), None)),
    ])
    .unwrap()];
    let layout = Layout::new(vec![
        ColumnId::new(TableId(0), 0),
        ColumnId::new(TableId(0), 1),
        ColumnId::new(TableId(1), 0),
        ColumnId::new(TableId(1), 1),
    ]);
    let flat = BuildTable::build(build_chunk.clone(), vec![0, 1]);
    let chained = ChainedTable::build(build_chunk, vec![0, 1]);
    let types = [DataType::Int64, DataType::Int64];
    let mut s1 = MorselScratch::new();
    let got = probe_partition(
        &probe_chunks,
        &flat,
        &[0, 1],
        JoinKind::Inner,
        &None,
        &layout,
        &types,
        &mut s1,
    )
    .unwrap();
    let mut s2 = MorselScratch::new();
    let want = probe_partition_chained(
        &probe_chunks,
        &chained,
        &[0, 1],
        JoinKind::Inner,
        &None,
        &layout,
        &types,
        &mut s2,
    )
    .unwrap();
    assert_eq!(exact_rows(&got), exact_rows(&want));
    assert!(!exact_rows(&got).is_empty(), "degenerate test: no matches");
}

#[test]
fn scratch_reuse_stays_allocation_free() {
    // Second probe of same-shaped chunks through a warmed scratch must not
    // grow any buffer.
    let build = BuildTable::build(int_chunk(&(0..2048).collect::<Vec<_>>(), &[]), vec![0]);
    let probe_chunks = [int_chunk(
        &(0..4096).map(|i| i % 3000).collect::<Vec<_>>(),
        &[],
    )];
    let mut scratch = MorselScratch::new();
    let run = |scratch: &mut MorselScratch| {
        probe_partition(
            &probe_chunks,
            &build,
            &[0],
            JoinKind::Inner,
            &None,
            &joined_layout(),
            &[DataType::Int64],
            scratch,
        )
        .unwrap();
    };
    run(&mut scratch);
    let grows_after_warmup = scratch.take_grows();
    assert!(grows_after_warmup > 0, "first probe must size the buffers");
    run(&mut scratch);
    assert_eq!(scratch.take_grows(), 0, "warm probe reallocated");
}

#[test]
fn tpch_join_results_identical_across_layouts_and_dop() {
    const SF: f64 = 0.005;
    const SEED: u64 = 20260731;
    let db = tpch::gen::generate(SF, SEED).expect("generate");
    let catalog = Arc::new(db.catalog);
    // Q5/Q9/Q18 are the join-heaviest supported queries; dop 1 vs 4 also
    // shifts partition counts and therefore directory sizes per table.
    for q in [5usize, 9, 18] {
        let sql = tpch::query_text(q, SF);
        let mut reference: Option<Vec<Vec<String>>> = None;
        for layout in BloomLayout::ALL {
            for dop in [1usize, 4] {
                let engine = Engine::over_catalog(
                    catalog.clone(),
                    EngineConfig::default()
                        .with_bloom_mode(BloomMode::Cbo)
                        .with_bloom_layout(layout)
                        .with_dop(dop),
                );
                let out = engine
                    .connect()
                    .run_sql(&sql)
                    .unwrap_or_else(|e| panic!("Q{q} [{layout} dop={dop}]: {e}"));
                let rows = rows_of(&out.chunk);
                match &reference {
                    None => reference = Some(rows),
                    Some(want) => {
                        assert_eq!(&rows, want, "Q{q} [{layout} dop={dop}] differs from oracle")
                    }
                }
            }
        }
    }
}
