//! Streaming execution and prepared-statement semantics.
//!
//! * `execute_stream` must yield chunks whose concatenation equals the
//!   gathered `QueryResult.chunk` — and equals the eager (non-streaming)
//!   executor's output — on every TPC-H query, under all three
//!   `IndexMode`s.
//! * Prepared statements must return exactly the rows the equivalent
//!   literal SQL returns, for every binding, without re-planning.

use bfq::common::date::parse_date;
use bfq::exec::execute_plan_opts;
use bfq::prelude::*;
use bfq::tpch;
use std::sync::Arc;

mod common;
use common::rows_of;

const SF: f64 = 0.005;
const SEED: u64 = 20260610;

#[test]
fn stream_concat_equals_gathered_on_all_tpch_queries_and_index_modes() {
    let db = tpch::gen::generate(SF, SEED).expect("generate");
    let catalog = Arc::new(db.catalog);
    for mode in IndexMode::ALL {
        let engine = Engine::over_catalog(
            catalog.clone(),
            EngineConfig::default()
                .with_bloom_mode(BloomMode::Cbo)
                .with_dop(3)
                .with_index_mode(mode),
        );
        let conn = engine.connect();
        for q in tpch::supported_queries() {
            let sql = tpch::query_text(q, SF);
            let gathered = conn
                .run_sql(&sql)
                .unwrap_or_else(|e| panic!("Q{q} [{mode}]: {e}"));
            // Eager (non-streaming) executor on the very same plan.
            let eager = execute_plan_opts(&gathered.optimized.plan, catalog.clone(), 3, mode)
                .unwrap_or_else(|e| panic!("Q{q} [{mode}] eager: {e}"));
            // Streaming, chunk by chunk.
            let stream = conn
                .execute_stream(&sql)
                .unwrap_or_else(|e| panic!("Q{q} [{mode}] stream: {e}"));
            let chunks: Vec<Chunk> = stream
                .map(|c| c.unwrap_or_else(|e| panic!("Q{q} [{mode}] chunk: {e}")))
                .collect();
            let concat = if chunks.is_empty() {
                None
            } else {
                Some(Chunk::concat(&chunks).expect("concat"))
            };
            let streamed_rows = concat.as_ref().map(rows_of).unwrap_or_default();
            assert_eq!(
                streamed_rows,
                rows_of(&gathered.chunk),
                "Q{q} [{mode}]: stream concat differs from gathered result"
            );
            assert_eq!(
                rows_of(&eager.chunk),
                rows_of(&gathered.chunk),
                "Q{q} [{mode}]: eager executor differs from streaming gather"
            );
        }
    }
}

#[test]
fn prepared_bindings_match_literal_sql() {
    let db = tpch::gen::generate(SF, SEED).expect("generate");
    let engine = Engine::new(
        db,
        EngineConfig::default()
            .with_bloom_mode(BloomMode::Cbo)
            .with_dop(2),
    );
    let conn = engine.connect();

    // A parameterized Q6 (date window + discount band + quantity cap);
    // every binding must match the literal-SQL answer.
    let stmt = conn
        .prepare(
            "select sum(l_extendedprice * l_discount) as revenue
             from lineitem
             where l_shipdate >= $1 and l_shipdate < $2
               and l_discount between $3 and $4 and l_quantity < $5",
        )
        .expect("prepare q6");
    assert_eq!(stmt.param_count(), 5);
    assert_eq!(stmt.column_names(), ["revenue"]);
    for (year, disc, qty) in [(1994, 0.06, 24i64), (1995, 0.05, 30), (1996, 0.03, 10)] {
        let lo = Datum::Date(parse_date(&format!("{year}-01-01")).unwrap());
        let hi = Datum::Date(parse_date(&format!("{}-01-01", year + 1)).unwrap());
        let bound = stmt
            .bind(&[
                lo,
                hi,
                Datum::Float(disc - 0.01),
                Datum::Float(disc + 0.01),
                Datum::Int(qty),
            ])
            .expect("bind");
        let prepared = bound.execute().expect("execute");
        let literal = conn
            .run_sql(&format!(
                "select sum(l_extendedprice * l_discount) as revenue
                 from lineitem
                 where l_shipdate >= date '{year}-01-01'
                   and l_shipdate < date '{}-01-01'
                   and l_discount between {} and {}
                   and l_quantity < {qty}",
                year + 1,
                disc - 0.01,
                disc + 0.01
            ))
            .expect("literal");
        assert_eq!(
            rows_of(&prepared.chunk),
            rows_of(&literal.chunk),
            "binding (y={year}, d={disc}, q={qty}) differs from literal SQL"
        );
        // Streaming the bound statement agrees with gathering it.
        let streamed: Vec<Chunk> = stmt
            .execute_stream(&[
                Datum::Date(parse_date(&format!("{year}-01-01")).unwrap()),
                Datum::Date(parse_date(&format!("{}-01-01", year + 1)).unwrap()),
                Datum::Float(disc - 0.01),
                Datum::Float(disc + 0.01),
                Datum::Int(qty),
            ])
            .expect("stream")
            .map(|c| c.expect("chunk"))
            .collect();
        assert_eq!(
            rows_of(&Chunk::concat(&streamed).unwrap()),
            rows_of(&prepared.chunk)
        );
    }

    // String parameters through a join: positional `?` style.
    let stmt = conn
        .prepare(
            "select count(*) from orders, customer
             where o_custkey = c_custkey and c_mktsegment = ? and o_orderdate < ?",
        )
        .expect("prepare join");
    assert_eq!(stmt.param_count(), 2);
    for seg in ["BUILDING", "AUTOMOBILE"] {
        let cutoff = Datum::Date(parse_date("1995-03-15").unwrap());
        let prepared = stmt
            .execute(&[Datum::str(seg), cutoff])
            .expect("execute join");
        let literal = conn
            .run_sql(&format!(
                "select count(*) from orders, customer
                 where o_custkey = c_custkey and c_mktsegment = '{seg}'
                   and o_orderdate < date '1995-03-15'"
            ))
            .expect("literal join");
        assert_eq!(rows_of(&prepared.chunk), rows_of(&literal.chunk), "{seg}");
    }

    // Preparing the same text again is a plan-cache hit.
    let again = conn
        .prepare(
            "select count(*) from orders, customer
             where o_custkey = c_custkey and c_mktsegment = ? and o_orderdate < ?",
        )
        .expect("re-prepare");
    assert!(again.from_cache());
    assert!(engine.cache_stats().hits > 0);
}

#[test]
fn parameter_arity_and_adhoc_params_are_rejected() {
    let db = tpch::gen::generate(SF, SEED).expect("generate");
    let conn = Engine::new(db, EngineConfig::default()).connect();
    let stmt = conn
        .prepare("select count(*) from orders where o_orderkey = ?")
        .expect("prepare");
    assert_eq!(stmt.param_count(), 1);
    assert!(stmt.bind(&[]).is_err(), "too few params");
    assert!(
        stmt.bind(&[Datum::Int(1), Datum::Int(2)]).is_err(),
        "too many params"
    );
    // Executing an unbound parameterized statement ad hoc is an error.
    assert!(conn
        .run_sql("select count(*) from orders where o_orderkey = ?")
        .is_err());
}

#[test]
fn cache_normalizes_whitespace_and_case() {
    let db = tpch::gen::generate(SF, SEED).expect("generate");
    let engine = Engine::new(db, EngineConfig::default());
    let conn = engine.connect();
    let a = conn
        .run_sql("select count(*) from nation where n_regionkey = 1")
        .unwrap();
    assert!(!a.cache_hit);
    let b = conn
        .run_sql("SELECT COUNT(*)   FROM nation -- comment\n WHERE n_regionkey = 1")
        .unwrap();
    assert!(b.cache_hit, "normalized statements share one plan");
    assert_eq!(rows_of(&a.chunk), rows_of(&b.chunk));
}

#[test]
fn parameters_bind_without_type_context() {
    // Regression: `?` used to fail to bind wherever the binder had no type
    // context. Prepare-time inference now types parameters from their
    // surroundings, with a documented Int64 default for bare positions.
    let db = tpch::gen::generate(SF, SEED).expect("generate");
    let engine = Engine::new(db, EngineConfig::default());
    let conn = engine.connect();

    // Bare `select ?`: the documented Int64 default.
    let stmt = conn.prepare("select ?").expect("bare param binds");
    assert_eq!(stmt.param_count(), 1);
    let out = stmt.execute(&[Datum::Int(7)]).expect("execute");
    assert_eq!(rows_of(&out.chunk), vec![vec!["7".to_string()]]);

    // Arithmetic context: `? + 1` types through the other operand.
    let stmt = conn.prepare("select ? + 1").expect("arith param binds");
    let out = stmt.execute(&[Datum::Int(41)]).expect("execute");
    assert_eq!(rows_of(&out.chunk), vec![vec!["42".to_string()]]);

    // Comparison context against a column.
    let stmt = conn
        .prepare("select count(*) from region where r_regionkey = ?")
        .expect("where col = ? binds");
    let hit = stmt.execute(&[Datum::Int(1)]).expect("execute");
    let miss = stmt.execute(&[Datum::Int(999)]).expect("execute");
    assert_eq!(rows_of(&hit.chunk), vec![vec!["1".to_string()]]);
    assert_eq!(rows_of(&miss.chunk), vec![vec!["0".to_string()]]);

    // One parameter used with two irreconcilable types is the clear
    // bind error (not a silent guess).
    let err = conn
        .prepare("select count(*) from region where r_regionkey = $1 and r_name = $1")
        .expect_err("conflicting parameter types must not bind");
    let msg = err.to_string();
    assert!(msg.contains("conflicting types"), "unexpected error: {msg}");
}

#[test]
fn plan_cache_invalidates_on_catalog_mutation() {
    use bfq::storage::{Column, Field, Schema, Table};

    let make_table = |keys: &[i64]| {
        let schema = Arc::new(Schema::new(vec![Field::new("k", DataType::Int64)]));
        let chunk = Chunk::new(vec![Arc::new(Column::Int64(keys.to_vec(), None))]).unwrap();
        Table::new("t", schema, vec![chunk]).unwrap()
    };

    let engine = Engine::over_catalog(
        Arc::new(bfq::catalog::Catalog::new()),
        EngineConfig::default(),
    );
    engine
        .register_table(make_table(&[1, 2, 3]), vec![0])
        .unwrap();
    let conn = engine.connect();

    let first = conn.run_sql("select count(*) from t").unwrap();
    assert!(!first.cache_hit);
    assert_eq!(rows_of(&first.chunk), vec![vec!["3".to_string()]]);
    let again = conn.run_sql("select count(*) from t").unwrap();
    assert!(again.cache_hit, "repeat under unchanged catalog hits");

    // Replacing the table bumps the catalog version and clears the cache:
    // the same SQL re-plans and sees the new data — never a stale plan.
    engine
        .replace_table(make_table(&[10, 20, 30, 40, 50]), vec![0])
        .unwrap();
    let after = conn.run_sql("select count(*) from t").unwrap();
    assert!(!after.cache_hit, "mutation must invalidate the cached plan");
    assert_eq!(rows_of(&after.chunk), vec![vec!["5".to_string()]]);

    // Registering a *new* table invalidates too (its name may shadow
    // nothing, but statistics-driven plans are stale all the same).
    engine
        .register_table(
            {
                let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64)]));
                let chunk = Chunk::new(vec![Arc::new(Column::Int64(vec![9], None))]).unwrap();
                Table::new("u", schema, vec![chunk]).unwrap()
            },
            vec![],
        )
        .unwrap();
    let third = conn.run_sql("select count(*) from t").unwrap();
    assert!(!third.cache_hit, "register must invalidate cached plans");
    // And the new table is immediately queryable.
    let u = conn.run_sql("select count(*) from u").unwrap();
    assert_eq!(rows_of(&u.chunk), vec![vec!["1".to_string()]]);
}
