//! Concurrency: one shared `Engine`, many client threads.
//!
//! N threads each open a `Connection` and run a mix of prepared and ad-hoc
//! TPC-H queries. Every thread must see exactly the rows a single-threaded
//! run produces, and re-execution must be served from the shared plan cache
//! (hit counters > 0).

use bfq::prelude::*;
use bfq::tpch;

mod common;
use common::rows_of;

const SF: f64 = 0.005;
const SEED: u64 = 20260731;
const QUERIES: [usize; 5] = [1, 3, 6, 12, 14];

#[test]
fn shared_engine_across_threads_matches_single_threaded_run() {
    let db = tpch::gen::generate(SF, SEED).expect("generate");
    let engine = Engine::new(
        db,
        EngineConfig::default()
            .with_bloom_mode(BloomMode::Cbo)
            .with_dop(2),
    );

    // Single-threaded reference results.
    let reference: Vec<Vec<Vec<String>>> = {
        let conn = engine.connect();
        QUERIES
            .iter()
            .map(|&q| {
                let r = conn
                    .run_sql(&tpch::query_text(q, SF))
                    .unwrap_or_else(|e| panic!("Q{q}: {e}"));
                rows_of(&r.chunk)
            })
            .collect()
    };

    // A prepared statement shared by every thread.
    let shared_stmt = engine
        .connect()
        .prepare("select count(*) from lineitem where l_quantity < $1")
        .expect("prepare shared");
    let expected_counts: Vec<Vec<Vec<String>>> = [10i64, 25, 50]
        .iter()
        .map(|&q| {
            let r = shared_stmt.execute(&[Datum::Int(q)]).expect("bind shared");
            rows_of(&r.chunk)
        })
        .collect();

    const THREADS: usize = 6;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let engine = engine.clone();
            let reference = &reference;
            let shared_stmt = &shared_stmt;
            let expected_counts = &expected_counts;
            scope.spawn(move || {
                let conn = engine.connect();
                // Ad-hoc: every TPC-H query, rotated so threads overlap on
                // different statements at different times.
                for i in 0..QUERIES.len() {
                    let q = QUERIES[(i + t) % QUERIES.len()];
                    let r = conn
                        .run_sql(&tpch::query_text(q, SF))
                        .unwrap_or_else(|e| panic!("thread {t} Q{q}: {e}"));
                    assert_eq!(
                        rows_of(&r.chunk),
                        reference[(i + t) % QUERIES.len()],
                        "thread {t} Q{q}: results differ from single-threaded run"
                    );
                }
                // Prepared: same statement object shared across threads,
                // different bindings.
                for (i, &qty) in [10i64, 25, 50].iter().enumerate() {
                    let r = shared_stmt
                        .execute(&[Datum::Int(qty)])
                        .unwrap_or_else(|e| panic!("thread {t} prepared: {e}"));
                    assert_eq!(rows_of(&r.chunk), expected_counts[i]);
                }
                // And a thread-local prepared statement.
                let local = conn
                    .prepare("select count(*) from orders where o_orderkey = ?")
                    .expect("prepare local");
                let r = local.execute(&[Datum::Int(1)]).expect("bind local");
                assert_eq!(r.chunk.rows(), 1);
            });
        }
    });

    let stats = engine.cache_stats();
    assert!(
        stats.hits > 0,
        "re-executed statements must hit the shared plan cache: {stats:?}"
    );
    // Repeat ad-hoc executions should be cache-dominated; prepared
    // re-executions never even consult the cache (the statement holds its
    // plan), so misses stay bounded by the distinct (sql, config) pairs
    // plus benign planning races.
    assert!(
        stats.hits > stats.misses,
        "repeat executions should be cache-dominated: {stats:?}"
    );
}

#[test]
fn metrics_and_flight_recorder_are_thread_safe_and_bounded() {
    let db = tpch::gen::generate(SF, SEED).expect("generate");
    const CAPACITY: usize = 8;
    let engine = Engine::new(
        db,
        EngineConfig::default()
            .with_bloom_mode(BloomMode::Cbo)
            .with_dop(2)
            .with_flight_recorder_capacity(CAPACITY),
    );

    const THREADS: usize = 6;
    const ROUNDS: usize = 3;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let engine = engine.clone();
            scope.spawn(move || {
                let conn = engine.connect();
                for i in 0..ROUNDS {
                    let q = QUERIES[(i + t) % QUERIES.len()];
                    conn.run_sql(&tpch::query_text(q, SF))
                        .unwrap_or_else(|e| panic!("thread {t} Q{q}: {e}"));
                    // Reads interleave with concurrent writers: the ring
                    // never exceeds its bound mid-flight either.
                    assert!(engine.recent_queries().len() <= CAPACITY);
                }
            });
        }
    });

    // Every completed query was counted, none double-counted.
    let snap = engine.metrics();
    assert_eq!(
        snap.counter("bfq_queries_total"),
        Some((THREADS * ROUNDS) as u64)
    );
    assert_eq!(
        snap.summary("bfq_query_seconds").unwrap().count,
        (THREADS * ROUNDS) as u64
    );
    // The ring holds exactly its capacity (more queries ran than fit).
    let recent = engine.recent_queries();
    assert_eq!(recent.len(), CAPACITY);
    for p in &recent {
        assert!(p.phases.execute_ns > 0);
        assert!(p.plan_fingerprint != 0);
    }
    // Pass rows can never exceed probe rows, even merged across threads.
    assert!(
        snap.counter("bfq_filter_pass_rows_total").unwrap()
            <= snap.counter("bfq_filter_probe_rows_total").unwrap()
    );
}

#[test]
fn connection_options_isolate_plans_but_not_results() {
    let db = tpch::gen::generate(SF, SEED).expect("generate");
    let engine = Engine::new(db, EngineConfig::default().with_dop(2));

    let mut cbo = engine.connect();
    cbo.set("bloom_mode", "cbo").unwrap();
    let mut none = engine.connect();
    none.set("bloom_mode", "none").unwrap();
    none.set("index_mode", "off").unwrap();

    let sql = tpch::query_text(12, SF);
    let r_cbo = cbo.run_sql(&sql).expect("cbo");
    let r_none = none.run_sql(&sql).expect("none");
    assert_eq!(rows_of(&r_cbo.chunk), rows_of(&r_none.chunk));
    // Different effective configs ⇒ different cache entries, no false hits.
    assert!(!r_cbo.cache_hit && !r_none.cache_hit);
    assert_eq!(engine.cache_stats().insertions, 2);

    // Same connection again: now a hit.
    let again = cbo.run_sql(&sql).expect("cbo again");
    assert!(again.cache_hit);
    assert!(again.explain().contains("plan cache: hit"));

    // Unknown keys and values are rejected.
    assert!(cbo.set("bloom_mode", "sideways").is_err());
    assert!(cbo.set("whatever", "1").is_err());
    assert!(cbo.set("dop", "0").is_err());
    // Reset restores the engine default.
    cbo.set("bloom_mode", "default").unwrap();
    assert_eq!(cbo.options().bloom_mode, None);
}
