//! Observability: `EXPLAIN ANALYZE`, phase spans, the engine metrics
//! registry, and the query flight recorder.
//!
//! Verified here:
//! * `EXPLAIN ANALYZE` on every supported TPC-H query annotates each
//!   executed node with actual rows, est-vs-actual q-error and wall time,
//!   and places observed runtime-filter pass rates next to the estimator's
//!   predicted FPR (§3.5) — the planner's est-vs-actual feedback loop.
//! * Phase spans nest: parse + bind + optimize + execute ≤ total, and a
//!   plan-cache hit zeroes the planning spans.
//! * Profiling instrumentation does not perturb per-node actual row
//!   counts: the pipelined executor still matches the eager oracle with
//!   profiling on and off.
//! * `Engine::metrics()` renders to Prometheus text and parses back to the
//!   identical snapshot.
//! * The flight recorder ring is bounded and newest-first.

use bfq::prelude::*;
use bfq::tpch;
use std::sync::Arc;

mod common;
use common::rows_of;

const SF: f64 = 0.005;
const SEED: u64 = 20260731;

fn tpch_engine(dop: usize) -> Arc<Engine> {
    let db = tpch::gen::generate(SF, SEED).expect("generate");
    Engine::new(
        db,
        EngineConfig::default()
            .with_bloom_mode(BloomMode::Cbo)
            .with_dop(dop),
    )
}

/// Rows of a one-column `plan` result joined back into the rendered text.
fn plan_text(r: &QueryResult) -> String {
    assert_eq!(r.column_names, vec!["plan".to_string()]);
    rows_of(&r.chunk)
        .into_iter()
        .map(|row| row.into_iter().next().unwrap())
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn explain_analyze_annotates_every_tpch_query() {
    let engine = tpch_engine(4);
    let conn = engine.connect();
    for q in tpch::supported_queries() {
        let sql = tpch::query_text(q, SF);
        let r = conn
            .run_sql(&format!("explain analyze {sql}"))
            .unwrap_or_else(|e| panic!("Q{q}: {e}"));
        let text = plan_text(&r);
        // Every node the executor touched carries its actual row count and
        // q-error; profiled nodes carry wall time.
        assert!(text.contains("actual_rows="), "Q{q}: no actuals\n{text}");
        assert!(text.contains("q_err="), "Q{q}: no q-error\n{text}");
        assert!(text.contains("time="), "Q{q}: no wall times\n{text}");
        assert!(text.contains("phases: parse"), "Q{q}: no phases\n{text}");
        // The per-node claims are checkable against the stats the run kept.
        r.optimized.plan.visit(&mut |node| {
            if let Some(actual) = r.exec_stats.actual(node.id) {
                assert!(
                    text.contains(&format!("actual_rows={actual}")),
                    "Q{q}: node {} actual {actual} missing\n{text}",
                    node.id
                );
            }
        });
        // Queries whose plans carry Bloom filters must show the predicted
        // pass fraction next to the observed one.
        let mut blooms = 0;
        r.optimized.plan.visit(&mut |node| {
            if let bfq::plan::PhysicalNode::Scan { blooms: b, .. }
            | bfq::plan::PhysicalNode::DerivedScan { blooms: b, .. } = &node.node
            {
                blooms += b.len();
            }
        });
        if blooms > 0 {
            assert!(text.contains("runtime filters:"), "Q{q}:\n{text}");
            assert!(text.contains("predicted pass"), "Q{q}:\n{text}");
            assert!(
                text.contains("observed pass") || text.contains("no rows probed"),
                "Q{q}:\n{text}"
            );
        }
    }
}

#[test]
fn explain_plans_without_executing() {
    let engine = tpch_engine(2);
    let conn = engine.connect();
    let before = engine.metrics().counter("bfq_queries_total").unwrap();
    let r = conn
        .run_sql("EXPLAIN select count(*) from lineitem where l_quantity < 10")
        .expect("explain");
    let text = plan_text(&r);
    assert!(text.contains("Scan lineitem"), "{text}");
    assert!(text.contains("est_rows="), "{text}");
    // Plan-only: nothing executed, nothing counted, no actuals annotated.
    assert!(!text.contains("actual_rows="), "{text}");
    let after = engine.metrics().counter("bfq_queries_total").unwrap();
    assert_eq!(before, after, "EXPLAIN must not count as an executed query");
}

#[test]
fn phase_spans_nest_and_cache_hits_skip_planning() {
    let engine = tpch_engine(2);
    let conn = engine.connect();
    let sql = tpch::query_text(6, SF);
    let cold = conn.run_sql(&sql).expect("cold");
    assert!(!cold.cache_hit);
    let p = cold.phases;
    assert!(p.parse_ns > 0, "parse span missing: {p:?}");
    assert!(p.bind_ns > 0, "bind span missing: {p:?}");
    assert!(p.optimize_ns > 0, "optimize span missing: {p:?}");
    assert!(p.execute_ns > 0, "execute span missing: {p:?}");
    // The four spans nest inside the end-to-end total.
    assert!(
        p.phase_sum_ns() <= p.total_ns,
        "phase sum {} exceeds total {}",
        p.phase_sum_ns(),
        p.total_ns
    );
    // The un-attributed remainder (cache lookup, result assembly) is small
    // relative to the work itself.
    assert!(
        p.total_ns - p.phase_sum_ns() <= p.phase_sum_ns() + 10_000_000,
        "un-attributed overhead dominates: {p:?}"
    );

    let warm = conn.run_sql(&sql).expect("warm");
    assert!(warm.cache_hit);
    assert_eq!(warm.phases.planning_ns(), 0, "cache hit must skip planning");
    assert!(warm.phases.execute_ns > 0);

    // The rendering surfaces all five spans.
    let rendered = warm.explain_analyze();
    for label in ["parse", "bind", "optimize", "execute", "total"] {
        assert!(rendered.contains(label), "missing `{label}`:\n{rendered}");
    }
}

#[test]
fn profiling_does_not_perturb_actuals_vs_eager_oracle() {
    let db = tpch::gen::generate(SF, SEED).expect("generate");
    let catalog = Arc::new(db.catalog);
    for mode in IndexMode::ALL {
        for dop in [1usize, 4] {
            for profile in [true, false] {
                let engine = Engine::over_catalog(
                    catalog.clone(),
                    EngineConfig::default()
                        .with_bloom_mode(BloomMode::Cbo)
                        .with_dop(dop)
                        .with_index_mode(mode)
                        .with_profile(profile),
                );
                let conn = engine.connect();
                for q in [1usize, 3, 6, 12, 14] {
                    let sql = tpch::query_text(q, SF);
                    let piped = conn
                        .run_sql(&sql)
                        .unwrap_or_else(|e| panic!("Q{q} [{mode} dop={dop}]: {e}"));
                    let eager = bfq::exec::execute_plan_opts(
                        &piped.optimized.plan,
                        catalog.clone(),
                        dop,
                        mode,
                    )
                    .unwrap_or_else(|e| panic!("Q{q} eager: {e}"));
                    assert_eq!(rows_of(&piped.chunk), rows_of(&eager.chunk));
                    piped.optimized.plan.visit(&mut |node| {
                        assert_eq!(
                            piped.exec_stats.actual(node.id),
                            eager.stats.actual(node.id),
                            "Q{q} [{mode} dop={dop} profile={profile}] node {} actuals diverge",
                            node.id
                        );
                    });
                    if profile {
                        // The root is always profiled (sealed or chained).
                        assert!(
                            piped
                                .exec_stats
                                .profile_of(piped.optimized.plan.id)
                                .is_some(),
                            "Q{q}: root node unprofiled"
                        );
                    } else {
                        assert!(
                            piped.exec_stats.profiles().is_empty(),
                            "Q{q}: profiling off but profiles recorded"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn engine_metrics_prometheus_round_trip() {
    let engine = tpch_engine(2);
    let conn = engine.connect();
    let sql = tpch::query_text(3, SF);
    conn.run_sql(&sql).expect("q3");
    conn.run_sql(&sql).expect("q3 again");
    conn.run_sql(&tpch::query_text(6, SF)).expect("q6");

    let snap = engine.metrics();
    assert_eq!(snap.counter("bfq_queries_total"), Some(3));
    assert_eq!(
        snap.counter("bfq_plan_cache_hits_total"),
        Some(engine.cache_stats().hits)
    );
    // Q3 builds and probes runtime filters at this scale under CBO.
    assert!(snap.counter("bfq_filter_builds_total").unwrap() > 0);
    let probed = snap.counter("bfq_filter_probe_rows_total").unwrap();
    let passed = snap.counter("bfq_filter_pass_rows_total").unwrap();
    assert!(probed > 0, "no probe rows recorded");
    assert!(passed <= probed, "pass rows exceed probe rows");
    let q = snap.summary("bfq_query_seconds").unwrap();
    assert_eq!(q.count, 3);
    assert!(q.q50_ns <= q.q95_ns && q.q95_ns <= q.q99_ns);

    let text = snap.to_prometheus_text();
    let parsed = MetricsSnapshot::parse_prometheus_text(&text).expect("parse");
    assert_eq!(parsed, snap, "Prometheus text must round-trip exactly");
}

#[test]
fn flight_recorder_ring_is_bounded_newest_first() {
    let db = tpch::gen::generate(SF, SEED).expect("generate");
    let engine = Engine::new(
        db,
        EngineConfig::default()
            .with_dop(2)
            .with_flight_recorder_capacity(3),
    );
    let conn = engine.connect();
    for limit in 1..=5usize {
        conn.run_sql(&format!("select l_orderkey from lineitem limit {limit}"))
            .expect("query");
    }
    let recent = engine.recent_queries();
    assert_eq!(recent.len(), 3, "ring must hold exactly its capacity");
    assert!(recent[0].sql.ends_with("limit 5"), "{:?}", recent[0].sql);
    assert!(recent[2].sql.ends_with("limit 3"), "{:?}", recent[2].sql);
    for p in &recent {
        assert!(p.plan_fingerprint != 0);
        assert_eq!(p.determinism, Determinism::Strict);
        assert!(p.phases.execute_ns > 0);
        assert_eq!(p.rows_out as usize, {
            let l: usize = p.sql.rsplit(' ').next().unwrap().parse().unwrap();
            l
        });
    }
    // Prepared executions are recorded too, flagged as cache hits.
    let stmt = conn
        .prepare("select count(*) from orders where o_orderkey = ?")
        .expect("prepare");
    stmt.execute(&[Datum::Int(1)]).expect("execute");
    let recent = engine.recent_queries();
    assert!(recent[0].cache_hit);
    assert!(recent[0].sql.contains("o_orderkey"));
}

#[test]
fn explain_surfaces_stall_and_scratch_counters() {
    let engine = tpch_engine(4);
    let conn = engine.connect();
    let r = conn.run_sql(&tpch::query_text(12, SF)).expect("q12");
    let text = r.explain();
    assert!(text.contains("window stalls: "), "{text}");
    assert!(text.contains("filter scratch allocs: "), "{text}");
    // And the analyzed rendering keeps the same footer.
    let analyzed = r.explain_analyze();
    assert!(analyzed.contains("window stalls: "), "{analyzed}");
    assert!(analyzed.contains("filter scratch allocs: "), "{analyzed}");
    assert!(analyzed.contains("determinism: strict"), "{analyzed}");
}

#[test]
fn streams_record_on_gather() {
    let engine = tpch_engine(2);
    let conn = engine.connect();
    let r = conn
        .execute_stream(&tpch::query_text(6, SF))
        .expect("stream")
        .gather()
        .expect("gather");
    assert!(r.phases.execute_ns > 0);
    assert_eq!(engine.metrics().counter("bfq_queries_total"), Some(1));
    assert_eq!(engine.recent_queries().len(), 1);
}

#[test]
fn timeout_and_budget_knobs_show_in_the_explain_footer() {
    let engine = tpch_engine(2);
    let mut conn = engine.connect();
    // Off by default: the footer stays silent about them.
    let plain = conn.run_sql("select count(*) from nation").expect("run");
    let footer = plain.explain();
    assert!(!footer.contains("statement timeout"), "footer: {footer}");
    assert!(!footer.contains("memory budget"), "footer: {footer}");

    conn.set("statement_timeout", "30000").expect("set timeout");
    conn.set("memory_budget_rows", "5000000")
        .expect("set budget");
    let tuned = conn.run_sql("select count(*) from nation").expect("run");
    let footer = tuned.explain_analyze();
    assert!(
        footer.contains("statement timeout: 30000ms"),
        "footer: {footer}"
    );
    assert!(
        footer.contains("memory budget: 5000000 rows"),
        "footer: {footer}"
    );

    // Execution-only knobs: both runs hit the same cached plan.
    assert!(
        tuned.cache_hit,
        "timeout/budget must not fork the plan cache"
    );

    // A budget that cannot hold the hash-join build fails cleanly.
    conn.set("memory_budget_rows", "10")
        .expect("set tiny budget");
    let outcome =
        conn.run_sql("select count(*) from lineitem, orders where l_orderkey = o_orderkey");
    match outcome {
        Err(err) => assert!(
            err.to_string().contains("memory budget exceeded"),
            "error: {err}"
        ),
        Ok(_) => panic!("budget of 10 rows should have tripped"),
    }
}
