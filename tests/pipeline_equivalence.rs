//! Morsel-pipeline ↔ eager-executor equivalence.
//!
//! The morsel-driven pipeline executor must be **bit-identical** to the
//! eager executor on every TPC-H query, under every `IndexMode`, at
//! dop ∈ {1, 4, 16} — same rows, same order, exact `Datum` equality
//! (floats included: order-sensitive sinks consume morsels in the eager
//! executor's sequence order, so float accumulation order is preserved).
//! The streamed chunk sequence must concatenate to the same result.
//!
//! Also verified here: dropping a `ChunkStream` mid-stream leaks no worker
//! threads (the final pipeline runs on the consumer's thread), and
//! scan-heavy queries materialize a bounded reorder window instead of a
//! full-table intermediate (`ExecStats::peak_buffered_rows`).

use bfq::exec::{execute_plan_opts, execute_plan_pipelined, execute_plan_stream};
use bfq::prelude::*;
use bfq::tpch;
use std::sync::Arc;

const SF: f64 = 0.005;
const SEED: u64 = 20260731;

fn exact_rows(chunk: &Chunk) -> Vec<Vec<Datum>> {
    (0..chunk.rows()).map(|i| chunk.row(i)).collect()
}

#[test]
fn morsel_pipeline_is_bit_identical_to_eager_executor() {
    let db = tpch::gen::generate(SF, SEED).expect("generate");
    let catalog = Arc::new(db.catalog);
    for mode in IndexMode::ALL {
        for dop in [1usize, 4, 16] {
            let engine = Engine::over_catalog(
                catalog.clone(),
                EngineConfig::default()
                    .with_bloom_mode(BloomMode::Cbo)
                    .with_dop(dop)
                    .with_index_mode(mode),
            );
            let conn = engine.connect();
            for q in tpch::supported_queries() {
                let sql = tpch::query_text(q, SF);
                // Production path: the morsel pipeline (via the facade).
                let piped = conn
                    .run_sql(&sql)
                    .unwrap_or_else(|e| panic!("Q{q} [{mode} dop={dop}] pipeline: {e}"));
                let plan = &piped.optimized.plan;
                // Reference path: the eager executor on the same plan.
                let eager = execute_plan_opts(plan, catalog.clone(), dop, mode)
                    .unwrap_or_else(|e| panic!("Q{q} [{mode} dop={dop}] eager: {e}"));
                assert_eq!(
                    exact_rows(&piped.chunk),
                    exact_rows(&eager.chunk),
                    "Q{q} [{mode} dop={dop}]: morsel pipeline differs from eager"
                );
                // Streamed morsels concatenate to the identical chunk.
                let stream = execute_plan_stream(plan, catalog.clone(), dop, mode)
                    .unwrap_or_else(|e| panic!("Q{q} [{mode} dop={dop}] stream: {e}"));
                let chunks: Vec<Chunk> = stream
                    .map(|c| c.unwrap_or_else(|e| panic!("Q{q} [{mode} dop={dop}] chunk: {e}")))
                    .collect();
                let streamed: Vec<Vec<Datum>> = chunks.iter().flat_map(exact_rows).collect();
                assert_eq!(
                    streamed,
                    exact_rows(&eager.chunk),
                    "Q{q} [{mode} dop={dop}]: stream concat differs from eager"
                );
                // Per-node actual row counts agree between the executors
                // (morsel workers accumulate into the same totals) — except
                // under an early-exiting LIMIT, where the pipeline is
                // allowed to stop scanning sooner than the eager path.
                let has_limit = sql.to_ascii_lowercase().contains("limit");
                if !has_limit {
                    let mut mismatches = Vec::new();
                    plan.visit(&mut |node| {
                        let e = eager.stats.actual(node.id);
                        let p = piped.exec_stats.actual(node.id);
                        if e != p {
                            mismatches.push((node.id, node.op_name(), e, p));
                        }
                    });
                    assert!(
                        mismatches.is_empty(),
                        "Q{q} [{mode} dop={dop}]: per-node actuals diverge: {mismatches:?}"
                    );
                }
            }
        }
    }
}

#[cfg(target_os = "linux")]
fn live_threads() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line")
}

#[test]
fn dropping_a_stream_mid_way_leaks_no_worker_threads() {
    let db = tpch::gen::generate(SF, SEED).expect("generate");
    let engine = Engine::new(
        db,
        EngineConfig::default()
            .with_bloom_mode(BloomMode::Cbo)
            .with_dop(4),
    );
    let conn = engine.connect();
    // A join query whose build phase spawns workers at stream creation:
    // they must all be joined before the stream is handed out.
    let sql = "select l_orderkey, l_extendedprice from lineitem, orders \
               where l_orderkey = o_orderkey and o_orderdate < date '1995-06-01'";
    #[cfg(target_os = "linux")]
    let before = live_threads();
    let mut stream = conn.execute_stream(sql).expect("stream");
    let _first = stream.next().expect("at least one chunk").expect("chunk");
    drop(stream);
    #[cfg(target_os = "linux")]
    {
        // Other tests in this binary may have scoped workers alive at
        // either sample, so retry: their threads exit on their own, while
        // a thread leaked by the dropped stream never would.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let after = live_threads();
            if after <= before {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "dropping a part-consumed stream leaked worker threads \
                 ({before} before, {after} after)"
            );
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
    }
    // The engine keeps working after the abandoned stream.
    let out = conn.run_sql("select count(*) from lineitem").expect("ok");
    assert_eq!(out.chunk.rows(), 1);
}

#[test]
fn scan_heavy_queries_no_longer_materialize_the_table() {
    use bfq::exec::REORDER_WINDOW_PER_WORKER;
    use bfq::storage::{Column, Field, Schema, Table};

    // A Q6-style scan → aggregate over a table with many more chunks than
    // the reorder window, so the window bound is observable regardless of
    // worker/sink timing: 64 chunks × 512 rows.
    const CHUNKS: usize = 64;
    const CHUNK_ROWS: usize = 512;
    const DOP: usize = 4;
    let schema = Arc::new(Schema::new(vec![Field::new("v", DataType::Float64)]));
    let chunks = (0..CHUNKS)
        .map(|c| {
            let vals: Vec<f64> = (0..CHUNK_ROWS)
                .map(|i| (c * CHUNK_ROWS + i) as f64 * 0.25)
                .collect();
            Chunk::new(vec![Arc::new(Column::Float64(vals, None))]).unwrap()
        })
        .collect();
    let mut cat = bfq::catalog::Catalog::new();
    cat.register(Table::new("wide", schema, chunks).unwrap(), vec![])
        .unwrap();
    let catalog = Arc::new(cat);
    let engine = Engine::over_catalog(
        catalog.clone(),
        EngineConfig::default()
            .with_dop(DOP)
            // Pruning off so the scan really touches every chunk.
            .with_index_mode(IndexMode::Off),
    );
    let conn = engine.connect();
    let piped = conn
        .run_sql("select sum(v) from wide where v >= 0")
        .expect("pipeline");
    let plan = &piped.optimized.plan;
    let eager = execute_plan_opts(plan, catalog.clone(), DOP, IndexMode::Off).expect("eager");
    let morsel =
        execute_plan_pipelined(plan, catalog.clone(), DOP, IndexMode::Off).expect("morsel");
    assert_eq!(exact_rows(&piped.chunk), exact_rows(&eager.chunk));
    assert_eq!(exact_rows(&morsel.chunk), exact_rows(&eager.chunk));

    let table_rows = (CHUNKS * CHUNK_ROWS) as u64;
    let eager_peak = eager.stats.peak_buffered_rows();
    let morsel_peak = morsel.stats.peak_buffered_rows();
    assert!(
        eager_peak >= table_rows,
        "eager must have materialized the scanned table ({eager_peak} < {table_rows})"
    );
    // The pipeline buffers at most the reorder window (plus one morsel per
    // worker in flight) — a hard bound enforced by backpressure, not a
    // timing accident.
    let window_bound = ((DOP * REORDER_WINDOW_PER_WORKER + DOP + 1) * CHUNK_ROWS) as u64;
    assert!(
        morsel_peak <= window_bound,
        "morsel peak {morsel_peak} exceeds the reorder-window bound {window_bound}"
    );
    assert!(morsel_peak < eager_peak);

    // The real TPC-H Q6 shows the same ordering (lineitem has few chunks
    // at test scale, so only the relative claim is timing-independent).
    let db = tpch::gen::generate(SF, SEED).expect("generate");
    let tpch_catalog = Arc::new(db.catalog);
    let tpch_engine = Engine::over_catalog(
        tpch_catalog.clone(),
        EngineConfig::default()
            .with_bloom_mode(BloomMode::Cbo)
            .with_dop(DOP)
            .with_index_mode(IndexMode::Off),
    );
    let q6 = tpch::query_text(6, SF);
    let q6_piped = tpch_engine.connect().run_sql(&q6).expect("q6 pipeline");
    let q6_eager = execute_plan_opts(&q6_piped.optimized.plan, tpch_catalog, DOP, IndexMode::Off)
        .expect("q6 eager");
    assert_eq!(exact_rows(&q6_piped.chunk), exact_rows(&q6_eager.chunk));
    assert!(
        q6_piped.exec_stats.peak_buffered_rows() < q6_eager.stats.peak_buffered_rows(),
        "Q6 morsel peak not below eager peak"
    );
}

#[test]
fn cancelled_stream_dropped_mid_iteration_leaks_nothing_and_engine_survives() {
    let db = tpch::gen::generate(SF, SEED).expect("generate");
    let engine = Engine::new(
        db,
        EngineConfig::default()
            .with_bloom_mode(BloomMode::Cbo)
            .with_dop(4),
    );
    let conn = engine.connect();
    let sql = "select l1.l_orderkey, l1.l_extendedprice from lineitem l1, lineitem l2 \
               where l1.l_orderkey = l2.l_orderkey";
    #[cfg(target_os = "linux")]
    let before = live_threads();

    let mut stream = conn.execute_stream(sql).expect("stream");
    let _first = stream.next().expect("at least one chunk").expect("chunk");
    // Out-of-band cancellation, as a server would deliver it: the hub is
    // armed while the stream is live.
    assert!(conn.cancel_hub().cancel(), "stream should be armed");
    // The very next poll observes the token and fails with `cancelled`.
    let interrupted = stream.next().expect("poll after cancel");
    match interrupted {
        Err(BfqError::Cancelled(msg)) => {
            assert!(msg.contains("cancelled by client"), "message: {msg}")
        }
        other => panic!("expected Cancelled, got {other:?}"),
    }
    // Abandon the stream mid-iteration without draining it.
    drop(stream);

    // Dropping disarmed the hub and recorded why the token fired…
    assert_eq!(
        conn.cancel_hub().last_fired(),
        Some(CancelReason::Cancelled)
    );
    assert_eq!(conn.cancel_hub().last_fired(), None, "reason is taken once");
    // …and a cancel with nothing armed is a no-op.
    assert!(!conn.cancel_hub().cancel());

    #[cfg(target_os = "linux")]
    {
        // No leaked pipeline workers: same retry discipline as
        // `dropping_a_stream_mid_way_leaks_no_worker_threads`.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let after = live_threads();
            if after <= before {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "cancelled stream leaked worker threads ({before} before, {after} after)"
            );
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
    }

    // The engine is not poisoned: the same connection keeps working, and a
    // fresh run of the same statement completes.
    let recount = conn.run_sql("select count(*) from lineitem").expect("ok");
    assert_eq!(recount.chunk.rows(), 1);
    let full = conn.run_sql(sql).expect("same statement reruns");
    assert!(full.chunk.rows() > 0);
}

#[test]
fn statement_timeout_interrupts_streams_and_reports_timeout() {
    let db = tpch::gen::generate(SF, SEED).expect("generate");
    let engine = Engine::new(db, EngineConfig::default().with_dop(2));
    let mut conn = engine.connect();
    conn.set("statement_timeout", "1").expect("set");
    let sql = "select l1.l_orderkey from lineitem l1, lineitem l2, lineitem l3 \
               where l1.l_orderkey = l2.l_orderkey and l2.l_orderkey = l3.l_orderkey";
    // The deadline is checked lazily at morsel boundaries, so either the
    // gather fails (usual) or an absurdly fast machine finishes first.
    match conn.run_sql(sql) {
        Err(BfqError::Cancelled(msg)) => {
            assert!(msg.contains("timeout"), "message: {msg}");
            assert_eq!(conn.cancel_hub().last_fired(), Some(CancelReason::Timeout));
        }
        Err(other) => panic!("expected Cancelled, got {other}"),
        Ok(_) => {}
    }
    // Turning the timeout off restores normal operation.
    conn.set("statement_timeout", "0").expect("reset");
    let out = conn.run_sql("select count(*) from orders").expect("ok");
    assert_eq!(out.chunk.rows(), 1);
}
