//! Property-based invariants of the optimizer and estimator, over randomized
//! synthetic query blocks.

use std::sync::Arc;

use bfq::common::RelSet;
use bfq::core::synth::{chain_block, star_block, ChainSpec};
use bfq::core::{optimize_bare_block, BloomMode, OptimizerConfig};
use bfq::cost::BfAssumption;
use bfq::exec::execute_plan;
use proptest::prelude::*;

fn chain_specs(sizes: &[(u32, u8)]) -> Vec<ChainSpec> {
    sizes
        .iter()
        .enumerate()
        .map(|(i, (rows, keep))| {
            let spec = ChainSpec::new(format!("t{i}"), (*rows as usize).max(20));
            if *keep < 100 {
                spec.filtered(*keep as f64 / 100.0)
            } else {
                spec
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// BF-CBO explores a superset of plain CBO's plans, so its winning cost
    /// can never be worse, and both plans must return identical row counts.
    #[test]
    fn cbo_never_costs_more_and_agrees_with_plain(
        sizes in proptest::collection::vec((500u32..20_000, 2u8..110), 2..4)
    ) {
        let specs = chain_specs(&sizes);
        let run = |mode: BloomMode| {
            let mut fx = chain_block(&specs);
            let mut config = OptimizerConfig::with_mode(mode).dop(2);
            config.bf_min_apply_rows = 50.0;
            let catalog = Arc::new(fx.catalog.clone());
            let planned = optimize_bare_block(&fx.block, &mut fx.bindings, &catalog, &config)
                .expect("optimize");
            let out = execute_plan(&planned.plan, catalog, 2).expect("execute");
            out.chunk.rows()
        };
        let rows_none = run(BloomMode::None);
        let rows_post = run(BloomMode::Post);
        let rows_cbo = run(BloomMode::Cbo);
        prop_assert_eq!(rows_none, rows_post, "BF-Post changed results");
        prop_assert_eq!(rows_none, rows_cbo, "BF-CBO changed results");
    }

    /// The paper's §3.1 inequality: a larger δ can only shrink the effective
    /// build NDV, and hence the Bloom-filtered scan estimate.
    #[test]
    fn effective_ndv_monotone_in_delta(
        r0 in 2_000u32..50_000,
        r1 in 200u32..5_000,
        keep in 2u8..95,
    ) {
        let fx = chain_block(&[
            ChainSpec::new("r0", r0 as usize),
            ChainSpec::new("r1", r1 as usize),
            ChainSpec::new("r2", 200).filtered(keep as f64 / 100.0),
        ]);
        let est = fx.estimator();
        let build_col = fx.col(1, 0);
        let small = est.effective_build_ndv(build_col, RelSet::single(1));
        let big = est.effective_build_ndv(build_col, RelSet::from_iter([1, 2]));
        prop_assert!(big <= small * 1.0001, "δ-superset increased NDV: {big} > {small}");

        let mk = |delta| BfAssumption {
            apply_rel: 0,
            apply_col: fx.col(0, 1),
            build_rel: 1,
            build_col,
            delta,
        };
        let rows_small = est.bf_scan_rows(0, &[mk(RelSet::single(1))]);
        let rows_big = est.bf_scan_rows(0, &[mk(RelSet::from_iter([1, 2]))]);
        prop_assert!(rows_big <= rows_small * 1.0001);
    }

    /// Join cardinality estimates are symmetric in enumeration order and
    /// never below one row.
    #[test]
    fn join_card_sane(
        fact in 1_000u32..20_000,
        d1 in 50u32..2_000,
        d2 in 50u32..2_000,
    ) {
        let fx = star_block(
            ChainSpec::new("f", fact as usize),
            &[ChainSpec::new("d1", d1 as usize), ChainSpec::new("d2", d2 as usize)],
        );
        let est = fx.estimator();
        let full = est.join_card(RelSet::all(3));
        prop_assert!(full >= 1.0);
        // Adding a dimension (FK join) should not inflate cardinality beyond
        // a small estimation tolerance.
        let partial = est.join_card(RelSet::from_iter([0, 1]));
        prop_assert!(full <= partial * 1.5, "full {full} vs partial {partial}");
    }
}

/// Deterministic regression: every BF applied in a winning plan is built by
/// exactly one hash join above it, for a variety of shapes.
#[test]
fn filters_always_pair_up() {
    let shapes: Vec<Vec<ChainSpec>> = vec![
        chain_specs(&[(30_000, 100), (1_000, 20)]),
        chain_specs(&[(50_000, 100), (5_000, 50), (500, 10)]),
        chain_specs(&[(20_000, 80), (2_000, 100), (300, 5), (100, 50)]),
    ];
    for specs in shapes {
        let mut fx = chain_block(&specs);
        let mut config = OptimizerConfig::with_mode(BloomMode::Cbo).dop(3);
        config.bf_min_apply_rows = 50.0;
        let catalog = Arc::new(fx.catalog.clone());
        let planned =
            optimize_bare_block(&fx.block, &mut fx.bindings, &catalog, &config).expect("optimize");
        let (mut applied, mut built) = (Vec::new(), Vec::new());
        planned.plan.visit(&mut |n| match &n.node {
            bfq::plan::PhysicalNode::Scan { blooms, .. } => {
                applied.extend(blooms.iter().map(|b| b.filter))
            }
            bfq::plan::PhysicalNode::HashJoin { builds, .. } => {
                built.extend(builds.iter().map(|b| b.filter))
            }
            _ => {}
        });
        applied.sort();
        built.sort();
        assert_eq!(applied, built, "unpaired filters in {specs:?}");
        // Executing must terminate without filter-wait timeouts.
        let out = execute_plan(&planned.plan, catalog, 3).expect("execute");
        assert!(out.chunk.rows() > 0 || planned.plan.est_rows >= 0.0);
    }
}

/// Heuristic 7 keeps plans executable and results identical.
#[test]
fn heuristic7_preserves_results() {
    let specs = chain_specs(&[(40_000, 100), (4_000, 30), (400, 10)]);
    let run = |h7: bool| {
        let mut fx = chain_block(&specs);
        let mut config = OptimizerConfig::with_mode(BloomMode::Cbo).dop(2);
        config.bf_min_apply_rows = 50.0;
        config.h7_enabled = h7;
        config.h7_max_subplans = 1;
        let catalog = Arc::new(fx.catalog.clone());
        let planned =
            optimize_bare_block(&fx.block, &mut fx.bindings, &catalog, &config).expect("optimize");
        execute_plan(&planned.plan, catalog, 2)
            .expect("execute")
            .chunk
            .rows()
    };
    assert_eq!(run(false), run(true));
}
