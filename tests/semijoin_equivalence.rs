//! Semijoin-program ↔ eager-oracle equivalence.
//!
//! Three guarantees for the Yannakakis-style semijoin programs the DP can
//! now select (`semijoin=auto`, the default):
//!
//! 1. **Bit-identity on TPC-H.** With programs enabled, every supported
//!    TPC-H query under every `IndexMode` at dop ∈ {1, 4, 16} returns the
//!    exact same rows (and checksum) as the eager reference executor run
//!    on the same plan. Programs are a *physical* rewrite: whichever lane
//!    the DP picks, results must not move by a bit.
//! 2. **Programs genuinely reduce work.** On a synthetic 5-way snowflake
//!    engineered so the per-filter selectivity gate (H6) blocks every
//!    per-join Bloom filter while the *product* of the program's reducers
//!    is strong, the DP selects the program, results match `semijoin=off`
//!    exactly, and the probe-pass scan of the fact table reads strictly
//!    fewer rows than the filterless per-join plan.
//! 3. **GYO never accepts cyclic graphs.** Property test: join graphs
//!    containing a chordless cycle of length ≥ 3 on distinct attributes
//!    (plus arbitrary acyclic attachments and arbitrary row counts) are
//!    always rejected by `join_tree`.

mod common;

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use bfq::catalog::Catalog;
use bfq::common::DataType;
use bfq::exec::execute_plan_opts;
use bfq::plan::PhysicalNode;
use bfq::prelude::*;
use bfq::tpch;
use common::rows_of;

const SF: f64 = 0.005;
const SEED: u64 = 20260731;

fn exact_rows(chunk: &Chunk) -> Vec<Vec<Datum>> {
    (0..chunk.rows()).map(|i| chunk.row(i)).collect()
}

/// Order-sensitive checksum over a result: every row's datums, rendered
/// with float normalization, folded through one hasher.
fn checksum(chunk: &Chunk) -> u64 {
    let mut h = DefaultHasher::new();
    for row in rows_of(chunk) {
        row.hash(&mut h);
    }
    h.finish()
}

#[test]
fn tpch_semijoin_auto_is_bit_identical_to_eager_oracle() {
    let db = tpch::gen::generate(SF, SEED).expect("generate");
    let catalog = Arc::new(db.catalog);
    for mode in IndexMode::ALL {
        for dop in [1usize, 4, 16] {
            let engine = Engine::over_catalog(
                catalog.clone(),
                EngineConfig::default()
                    .with_bloom_mode(BloomMode::Cbo)
                    .with_dop(dop)
                    .with_index_mode(mode),
            );
            let conn = engine.connect();
            for q in tpch::supported_queries() {
                let sql = tpch::query_text(q, SF);
                let run = conn
                    .run_sql(&sql)
                    .unwrap_or_else(|e| panic!("Q{q} [{mode} dop={dop}]: {e}"));
                let eager = execute_plan_opts(&run.optimized.plan, catalog.clone(), dop, mode)
                    .unwrap_or_else(|e| panic!("Q{q} [{mode} dop={dop}] eager: {e}"));
                assert_eq!(
                    exact_rows(&run.chunk),
                    exact_rows(&eager.chunk),
                    "Q{q} [{mode} dop={dop}]: semijoin=auto differs from eager oracle"
                );
                assert_eq!(
                    checksum(&run.chunk),
                    checksum(&eager.chunk),
                    "Q{q} [{mode} dop={dop}]: checksum mismatch"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Synthetic snowflake where the program beats per-join filters.
// ---------------------------------------------------------------------------

const CHUNK: usize = 4096;

fn int_table(cat: &mut Catalog, name: &str, cols: &[(&str, Vec<i64>)], unique: Vec<u32>) {
    let schema = Arc::new(bfq::storage::Schema::new(
        cols.iter()
            .map(|(n, _)| bfq::storage::Field::new(*n, DataType::Int64))
            .collect::<Vec<_>>(),
    ));
    let rows = cols[0].1.len();
    let chunks = (0..rows)
        .step_by(CHUNK)
        .map(|lo| {
            let hi = (lo + CHUNK).min(rows);
            bfq::storage::Chunk::new(
                cols.iter()
                    .map(|(_, v)| Arc::new(bfq::storage::Column::Int64(v[lo..hi].to_vec(), None)))
                    .collect(),
            )
            .unwrap()
        })
        .collect();
    cat.register(Table::new(name, schema, chunks).unwrap(), unique)
        .unwrap();
}

/// Fact (600k rows) → two dimension chains, each dim (4k rows) → sub-dim
/// (100 rows) carrying the predicate. Each chain's end-to-end selectivity
/// is 0.7 — individually too weak for the per-filter 2/3 pass-fraction
/// gate, so the per-join lane places no filters; the program composes both
/// chains and roughly halves the fact scan.
fn snowflake() -> Catalog {
    let mut cat = Catalog::new();
    let dim = 4_000i64;
    let sub = 100i64;
    let fact = 600_000i64;
    int_table(
        &mut cat,
        "a2",
        &[
            ("a2key", (0..sub).collect()),
            ("a2attr", (0..sub).map(|i| i % 10).collect()),
        ],
        vec![0],
    );
    int_table(
        &mut cat,
        "da",
        &[
            ("akey", (0..dim).collect()),
            ("a2k", (0..dim).map(|i| i % sub).collect()),
        ],
        vec![0],
    );
    int_table(
        &mut cat,
        "b2",
        &[
            ("b2key", (0..sub).collect()),
            ("b2attr", (0..sub).map(|i| i % 10).collect()),
        ],
        vec![0],
    );
    int_table(
        &mut cat,
        "db",
        &[
            ("bkey", (0..dim).collect()),
            ("b2k", (0..dim).map(|i| i % sub).collect()),
        ],
        vec![0],
    );
    int_table(
        &mut cat,
        "fact",
        &[
            ("ak", (0..fact).map(|i| i % dim).collect()),
            ("bk", (0..fact).map(|i| (i * 7 + 3) % dim).collect()),
            ("val", (0..fact).map(|i| i % 1000).collect()),
        ],
        vec![],
    );
    cat
}

const SNOWFLAKE_SQL: &str = "select sum(f.val) from fact f, da, a2, db, b2 \
                             where f.ak = da.akey and da.a2k = a2.a2key \
                             and f.bk = db.bkey and db.b2k = b2.b2key \
                             and a2.a2attr < 7 and b2.b2attr < 7";

/// Sum of actual rows produced by scans of `base` anywhere in the plan
/// (probe pass and reducer-pass schedule steps alike).
fn scanned_rows(run: &QueryResult, base: bfq::common::TableId) -> u64 {
    let mut total = 0u64;
    run.optimized.plan.visit(&mut |node| {
        if let PhysicalNode::Scan { base: b, .. } = &node.node {
            if *b == base {
                total += run.exec_stats.actual(node.id).unwrap_or(0);
            }
        }
    });
    total
}

#[test]
fn snowflake_program_reduces_probe_rows_and_matches_off() {
    let catalog = Arc::new(snowflake());
    let fact_id = catalog.meta_by_name("fact").unwrap().id;
    for mode in IndexMode::ALL {
        for dop in [1usize, 4, 16] {
            let engine = Engine::over_catalog(
                catalog.clone(),
                EngineConfig::default()
                    .with_bloom_mode(BloomMode::Cbo)
                    .with_dop(dop)
                    .with_index_mode(mode),
            );
            let conn = engine.connect();
            let auto = conn.run_sql(SNOWFLAKE_SQL).expect("semijoin=auto");
            assert_eq!(
                auto.optimized.stats.programs, 1,
                "[{mode} dop={dop}] DP must select the semijoin program"
            );
            assert_eq!(
                auto.optimized.stats.program_reducers, 4,
                "[{mode} dop={dop}] one reducer per join-tree edge"
            );

            let mut off_conn = engine.connect();
            off_conn.set("semijoin", "off").unwrap();
            let off = off_conn.run_sql(SNOWFLAKE_SQL).expect("semijoin=off");
            assert_eq!(off.optimized.stats.programs, 0);
            assert_eq!(
                off.optimized.stats.cbo_filters, 0,
                "[{mode} dop={dop}] H6 must gate every per-join filter, \
                 else the snowflake no longer isolates the program's win"
            );

            // Same answer, and bit-identical to the eager oracle on the
            // program plan.
            assert_eq!(rows_of(&auto.chunk), rows_of(&off.chunk));
            assert_eq!(auto.chunk.row(0), vec![Datum::Int(149_340_000)]);
            let eager = execute_plan_opts(&auto.optimized.plan, catalog.clone(), dop, mode)
                .expect("eager oracle");
            assert_eq!(exact_rows(&auto.chunk), exact_rows(&eager.chunk));

            // The program's final reducers must strictly reduce the
            // probe-pass fact scan versus the filterless per-join plan.
            let auto_fact = scanned_rows(&auto, fact_id);
            let off_fact = scanned_rows(&off, fact_id);
            assert!(
                auto_fact < off_fact,
                "[{mode} dop={dop}] program scanned {auto_fact} fact rows, \
                 per-join plan {off_fact}: no reduction"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// GYO rejects cyclic join graphs.
// ---------------------------------------------------------------------------

mod gyo {
    use bfq::common::{ColumnId, TableId};
    use bfq::core::join_tree;
    use bfq::plan::block::FIRST_VIRTUAL_TABLE;
    use bfq::plan::{BaseRel, EquiClause, QueryBlock, RelKind, RelSource};
    use proptest::prelude::*;

    /// A block of `n` inner base-table rels joined by the given clauses
    /// (`(left_rel, left_col, right_rel, right_col)`).
    fn block(n: usize, clauses: &[(usize, u32, usize, u32)]) -> QueryBlock {
        let rels = (0..n)
            .map(|i| BaseRel {
                ordinal: i,
                rel_id: TableId(FIRST_VIRTUAL_TABLE + i as u32),
                source: RelSource::Table(TableId(i as u32)),
                alias: format!("t{i}"),
                kind: RelKind::Inner,
                local_preds: vec![],
            })
            .collect();
        let equi_clauses = clauses
            .iter()
            .map(|&(lr, li, rr, ri)| EquiClause {
                left: ColumnId::new(TableId(FIRST_VIRTUAL_TABLE + lr as u32), li),
                right: ColumnId::new(TableId(FIRST_VIRTUAL_TABLE + rr as u32), ri),
                left_rel: lr,
                right_rel: rr,
            })
            .collect();
        QueryBlock {
            rels,
            equi_clauses,
            complex_preds: vec![],
        }
    }

    proptest! {
        /// A chordless cycle of length ≥ 3 on pairwise-distinct attributes
        /// is cyclic no matter how many acyclic ears hang off it and no
        /// matter the row counts biasing ear-removal order.
        #[test]
        fn join_tree_rejects_cyclic_graphs(
            cycle_len in 3usize..=6,
            extras in proptest::collection::vec(any::<usize>(), 0..=3),
            rows in proptest::collection::vec(1.0f64..1e7, 9),
        ) {
            let n = cycle_len + extras.len();
            let mut clauses = Vec::new();
            // The cycle: rel i's col 1 joins rel i+1's col 0. Distinct
            // (rel, col) pairs per edge, so no attribute sharing can
            // dissolve the cycle (unlike the shared-attribute star).
            for i in 0..cycle_len {
                clauses.push((i, 1u32, (i + 1) % cycle_len, 0u32));
            }
            // Acyclic attachments: each extra rel hangs off an earlier rel
            // on a fresh column — valid ears GYO will strip, exposing the
            // irreducible cycle underneath.
            for (j, pick) in extras.iter().enumerate() {
                let leaf = cycle_len + j;
                let parent = pick % leaf;
                clauses.push((parent, 2 + j as u32, leaf, 0u32));
            }
            let b = block(n, &clauses);
            prop_assert!(
                join_tree(&b, &rows[..n]).is_none(),
                "GYO accepted a cyclic join graph ({n} rels)"
            );
        }
    }
}
