//! Helpers shared by the integration suites.

use bfq::prelude::*;

/// Snapshot a chunk's rows as strings, normalizing float noise so results
/// from different plans/modes compare exactly.
pub fn rows_of(chunk: &Chunk) -> Vec<Vec<String>> {
    (0..chunk.rows())
        .map(|i| {
            chunk
                .row(i)
                .into_iter()
                .map(|d| match d {
                    Datum::Float(f) => format!("{f:.4}"),
                    other => other.to_string(),
                })
                .collect()
        })
        .collect()
}
