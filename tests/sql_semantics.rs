//! SQL semantics against hand-computed answers on tiny hand-built tables,
//! executed under BF-CBO so the Bloom machinery is always in the loop.

use std::sync::Arc;

use bfq::catalog::Catalog;
use bfq::common::{DataType, Datum};
use bfq::prelude::*;
use bfq::storage::{Chunk, Column, Field, Schema, StrData, Table};

fn mini_catalog() -> Catalog {
    let mut cat = Catalog::new();

    // dept(id PK, name)
    let dept_schema = Arc::new(Schema::new(vec![
        Field::new("id", DataType::Int64),
        Field::new("name", DataType::Utf8),
    ]));
    let dept = Table::new(
        "dept",
        dept_schema,
        vec![Chunk::new(vec![
            Arc::new(Column::Int64(vec![1, 2, 3], None)),
            Arc::new(Column::Utf8(
                ["eng", "sales", "hr"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<StrData>(),
                None,
            )),
        ])
        .unwrap()],
    )
    .unwrap();
    let dept_id = cat.register(dept, vec![0]).unwrap();

    // emp(id PK, dept_id FK, salary, hired)
    let emp_schema = Arc::new(Schema::new(vec![
        Field::new("id", DataType::Int64),
        Field::new("dept_id", DataType::Int64),
        Field::new("salary", DataType::Float64),
        Field::new("hired", DataType::Date),
    ]));
    let emp = Table::new(
        "emp",
        emp_schema,
        vec![Chunk::new(vec![
            Arc::new(Column::Int64(vec![10, 11, 12, 13, 14], None)),
            Arc::new(Column::Int64(vec![1, 1, 2, 2, 3], None)),
            Arc::new(Column::Float64(
                vec![100.0, 200.0, 150.0, 50.0, 300.0],
                None,
            )),
            Arc::new(Column::Date(vec![0, 100, 200, 300, 400], None)),
        ])
        .unwrap()],
    )
    .unwrap();
    let emp_id = cat.register(emp, vec![0]).unwrap();
    cat.add_foreign_key(
        bfq::common::ColumnId::new(emp_id, 1),
        bfq::common::ColumnId::new(dept_id, 0),
    )
    .unwrap();
    cat
}

fn session() -> Connection {
    Engine::over_catalog(
        Arc::new(mini_catalog()),
        EngineConfig::default()
            .with_bloom_mode(BloomMode::Cbo)
            .with_dop(2),
    )
    .connect()
}

fn ints(result: &QueryResult, col: usize) -> Vec<i64> {
    (0..result.chunk.rows())
        .map(|i| result.chunk.row(i)[col].as_i64().unwrap())
        .collect()
}

#[test]
fn inner_join_with_group_and_order() {
    let s = session();
    let r = s
        .run_sql(
            "select name, count(*) as n, sum(salary) as total
             from emp, dept where dept_id = dept.id
             group by name order by total desc",
        )
        .unwrap();
    assert_eq!(r.column_names, vec!["name", "n", "total"]);
    let names: Vec<String> = (0..r.chunk.rows())
        .map(|i| r.chunk.row(i)[0].as_str().unwrap().to_string())
        .collect();
    // totals: eng 300, sales 200, hr 300 → desc with stable tie order.
    assert_eq!(r.chunk.rows(), 3);
    let totals: Vec<f64> = (0..3)
        .map(|i| r.chunk.row(i)[2].as_f64().unwrap())
        .collect();
    assert!(totals[0] >= totals[1] && totals[1] >= totals[2]);
    assert!(names.contains(&"eng".to_string()));
}

#[test]
fn having_and_avg() {
    let s = session();
    let r = s
        .run_sql(
            "select dept_id, avg(salary) as a from emp
             group by dept_id having avg(salary) > 120 order by dept_id",
        )
        .unwrap();
    // dept 1 avg 150, dept 2 avg 100 (excluded), dept 3 avg 300.
    assert_eq!(ints(&r, 0), vec![1, 3]);
}

#[test]
fn semi_and_anti_subqueries() {
    let s = session();
    let r = s
        .run_sql(
            "select dept.id from dept where exists
             (select emp.id from emp where dept_id = dept.id and salary > 180)
             order by id",
        )
        .unwrap();
    assert_eq!(ints(&r, 0), vec![1, 3]);
    let r = s
        .run_sql(
            "select dept.id from dept where not exists
             (select emp.id from emp where dept_id = dept.id and salary > 180)
             order by id",
        )
        .unwrap();
    assert_eq!(ints(&r, 0), vec![2]);
    let r = s
        .run_sql("select emp.id from emp where dept_id in (select id from dept where name = 'eng') order by emp.id")
        .unwrap();
    assert_eq!(ints(&r, 0), vec![10, 11]);
}

#[test]
fn scalar_subquery_filter() {
    let s = session();
    let r = s
        .run_sql("select id from emp where salary > (select avg(salary) from emp) order by id")
        .unwrap();
    // avg = 160 → 200 and 300 qualify.
    assert_eq!(ints(&r, 0), vec![11, 14]);
}

#[test]
fn left_join_preserves_rows() {
    let s = session();
    // Filter emps to dept 1 inside the ON: all depts survive.
    let r = s
        .run_sql(
            "select dept.id, count(emp.id) as n
             from dept left outer join emp on dept.id = dept_id and salary >= 100
             group by dept.id order by dept.id",
        )
        .unwrap();
    assert_eq!(ints(&r, 0), vec![1, 2, 3]);
    // dept2 has one emp with salary >= 100 (150), dept3 one (300).
    assert_eq!(ints(&r, 1), vec![2, 1, 1]);
}

#[test]
fn date_arithmetic_and_between() {
    let s = session();
    let r = s
        .run_sql(
            "select id from emp
             where hired between date '1970-01-01' + interval '50' day and date '1970-12-31'
             order by id",
        )
        .unwrap();
    // hired days: 0,100,200,300,400 → between day 50 and day 364: 100,200,300.
    assert_eq!(ints(&r, 0), vec![11, 12, 13]);
    let r = s
        .run_sql("select extract(year from hired) y, count(*) c from emp group by extract(year from hired) order by y")
        .unwrap();
    assert_eq!(ints(&r, 0), vec![1970, 1971]);
    assert_eq!(ints(&r, 1), vec![4, 1]);
}

#[test]
fn case_and_arithmetic_projection() {
    let s = session();
    let r = s
        .run_sql(
            "select sum(case when salary >= 150 then 1 else 0 end) as rich,
                    sum(salary * 2) as double_total
             from emp",
        )
        .unwrap();
    assert_eq!(r.chunk.row(0)[0], Datum::Int(3));
    assert_eq!(r.chunk.row(0)[1], Datum::Float(1600.0));
}

#[test]
fn limit_and_distinct_count() {
    let s = session();
    let r = s
        .run_sql("select id from emp order by salary desc limit 2")
        .unwrap();
    assert_eq!(ints(&r, 0), vec![14, 11]);
    let r = s
        .run_sql("select count(distinct dept_id) from emp")
        .unwrap();
    assert_eq!(r.chunk.row(0)[0], Datum::Int(3));
}

#[test]
fn explain_contains_plan_shape() {
    let s = session();
    let r = s
        .run_sql("select count(*) from emp, dept where dept_id = dept.id")
        .unwrap();
    let plan = r.explain();
    assert!(plan.contains("HashAgg") || plan.contains("Agg"));
    assert!(plan.contains("Join"));
    assert!(plan.contains("Scan"));
}
