//! Runtime-filter chunk skipping beyond the exact-hash limit.
//!
//! Build sides with ≤ 1024 distinct keys ship exact key hashes, letting
//! scans probe per-chunk Bloom indexes. Above that limit skipping used to
//! silently disable; the filter now carries a merged per-partition
//! [`bfq::bloom::KeySummary`] so key-clustered fact chunks are still
//! skipped — and `ScanPruneStats::skipped_rfsummary` makes the tier that
//! proved each skip observable.

use bfq::prelude::*;
use bfq::storage::{Column, Field, Schema, Table};
use std::sync::Arc;

/// A fact table of `n_chunks` chunks, each a contiguous key range (the
/// key-clustered layout a time-ordered fact table has after sorting).
fn clustered_fact(name: &str, n_chunks: usize, chunk_rows: i64) -> Table {
    let schema = Arc::new(Schema::new(vec![
        Field::new("f_key", DataType::Int64),
        Field::new("f_val", DataType::Int64),
    ]));
    let chunks = (0..n_chunks)
        .map(|c| {
            let lo = c as i64 * chunk_rows;
            let keys: Vec<i64> = (lo..lo + chunk_rows).collect();
            let vals: Vec<i64> = keys.iter().map(|k| k % 97).collect();
            Chunk::new(vec![
                Arc::new(Column::Int64(keys, None)),
                Arc::new(Column::Int64(vals, None)),
            ])
            .unwrap()
        })
        .collect();
    Table::new(name, schema, chunks).unwrap()
}

/// A dimension whose keys form two clusters with a wide gap — more than
/// 1024 distinct keys (so exact hashes are dropped), but leaving most of
/// the fact table's key range provably empty.
fn gapped_dim(name: &str) -> Table {
    let schema = Arc::new(Schema::new(vec![Field::new("d_key", DataType::Int64)]));
    let mut keys: Vec<i64> = (0..1000).collect();
    keys.extend(30_000..31_000);
    let chunk = Chunk::new(vec![Arc::new(Column::Int64(keys, None))]).unwrap();
    Table::new(name, schema, vec![chunk]).unwrap()
}

fn engine_with(mode: IndexMode) -> Arc<Engine> {
    let mut config = EngineConfig::default()
        .with_bloom_mode(BloomMode::Cbo)
        .with_dop(2)
        .with_index_mode(mode);
    // The H2 apply threshold is calibrated for big tables; lower it so
    // this synthetic join plans its runtime filter.
    config.optimizer.bf_min_apply_rows = 50.0;
    config.optimizer.bf_max_build_ndv = 1_000_000.0;
    let engine = Engine::over_catalog(Arc::new(bfq::catalog::Catalog::new()), config);
    engine
        .register_table(clustered_fact("fact", 20, 2_000), vec![0])
        .unwrap();
    // No uniqueness declared: this synthetic dimension is not referentially
    // complete, so the FK→PK losslessness heuristic (H3) must not prune the
    // filter candidate.
    engine.register_table(gapped_dim("dim"), vec![]).unwrap();
    engine
        .catalog()
        .meta_by_name("fact")
        .expect("fact registered");
    engine
}

const JOIN_SQL: &str = "select sum(f_val) as s, count(*) as n from fact, dim where f_key = d_key";

#[test]
fn large_build_sides_still_skip_chunks_via_the_summary_tier() {
    let engine = engine_with(IndexMode::ZoneMapBloom);
    let out = engine.connect().run_sql(JOIN_SQL).unwrap();
    let prune = out.exec_stats.prune_totals();

    // The build side has 2000 distinct keys — beyond the exact-hash limit —
    // yet the gap chunks (keys 2000..30000, chunks 1..=14) are skipped, and
    // the stats name the tier that proved it.
    assert!(
        prune.skipped_rfsummary >= 10,
        "summary tier skipped only {} chunks: {prune:?}",
        prune.skipped_rfsummary
    );
    // Chunks past the build-key maximum (31000+) fall to the bounds tier.
    assert!(
        prune.skipped_rfilter >= 1,
        "bounds tier skipped nothing: {prune:?}"
    );
    // The explain output surfaces the tier.
    assert!(
        out.explain().contains("filtersummary"),
        "explain does not surface the summary tier:\n{}",
        out.explain()
    );

    // Correctness: identical result with all skipping disabled.
    let baseline = engine_with(IndexMode::Off)
        .connect()
        .run_sql(JOIN_SQL)
        .unwrap();
    assert_eq!(baseline.exec_stats.prune_totals().skipped(), 0);
    let rows = |c: &Chunk| (0..c.rows()).map(|i| c.row(i)).collect::<Vec<_>>();
    assert_eq!(rows(&out.chunk), rows(&baseline.chunk));
    // Sanity: the join matched exactly the 2000 dimension keys.
    assert_eq!(out.chunk.row(0)[1], Datum::Int(2_000));
}
