//! Blocked-layout correctness: the `bloom_layout` knob must never change
//! query results, only probe cost.
//!
//! * Full matrix: every TPC-H query × `BloomLayout` × `IndexMode` is
//!   bit-identical to the `standard` oracle (exact `Datum` equality,
//!   floats included) — Bloom layouts may differ only in which
//!   false-positive rows they pass, and the join above removes those
//!   either way.
//! * Blocked per-chunk indexes (catalog registered under
//!   `set_index_bloom_layout(Blocked)`) keep data skipping working and
//!   results identical.
//! * Allocation discipline: steady-state morsel execution performs zero
//!   filter-path allocations — the scratch-growth counter stays a small
//!   constant while the scan processes hundreds of morsels.
//! * The SET plumbing: `bloom_layout` participates in options and the
//!   plan-cache key.

use bfq::prelude::*;
use bfq::storage::{Column, Field, Schema};
use bfq::tpch;
use std::sync::Arc;

const SF: f64 = 0.005;
const SEED: u64 = 20260731;

fn exact_rows(chunk: &Chunk) -> Vec<Vec<Datum>> {
    (0..chunk.rows()).map(|i| chunk.row(i)).collect()
}

#[test]
fn blocked_layout_is_bit_identical_to_standard_oracle() {
    let db = tpch::gen::generate(SF, SEED).expect("generate");
    let catalog = Arc::new(db.catalog);
    for mode in IndexMode::ALL {
        // Oracle pass: the standard layout.
        let mut oracle: Vec<(usize, Vec<Vec<Datum>>)> = Vec::new();
        let std_engine = Engine::over_catalog(
            catalog.clone(),
            EngineConfig::default()
                .with_bloom_mode(BloomMode::Cbo)
                .with_dop(4)
                .with_index_mode(mode)
                .with_bloom_layout(BloomLayout::Standard),
        );
        let std_conn = std_engine.connect();
        for q in tpch::supported_queries() {
            let sql = tpch::query_text(q, SF);
            let out = std_conn
                .run_sql(&sql)
                .unwrap_or_else(|e| panic!("Q{q} [{mode} standard]: {e}"));
            oracle.push((q, exact_rows(&out.chunk)));
        }
        // Blocked pass, via the SET path (exercising the session plumbing).
        let blk_engine = Engine::over_catalog(
            catalog.clone(),
            EngineConfig::default()
                .with_bloom_mode(BloomMode::Cbo)
                .with_dop(4)
                .with_index_mode(mode),
        );
        let mut blk_conn = blk_engine.connect();
        blk_conn.set("bloom_layout", "blocked").expect("SET");
        for (q, expected) in &oracle {
            let sql = tpch::query_text(*q, SF);
            let out = blk_conn
                .run_sql(&sql)
                .unwrap_or_else(|e| panic!("Q{q} [{mode} blocked]: {e}"));
            assert_eq!(
                &exact_rows(&out.chunk),
                expected,
                "Q{q} [{mode}]: blocked layout diverges from standard oracle"
            );
        }
    }
}

/// A synthetic star join whose fact side spans many chunks: 256 chunks of
/// 2 048 rows probing a restricted 64-key dimension — the shape where a
/// planned Bloom filter does real row-level work on every morsel. `f_key`
/// is deliberately spread across chunks (so the filter cannot be satisfied
/// by chunk skipping); `f_seq` is clustered and even-valued (so the chunk
/// index can prove point lookups empty via zone maps *and* the Bloom tier).
fn star_catalog(index_layout: BloomLayout) -> bfq::catalog::Catalog {
    let mut cat = bfq::catalog::Catalog::new();
    cat.set_index_bloom_layout(index_layout);
    let fact_schema = Arc::new(Schema::new(vec![
        Field::new("f_key", DataType::Int64),
        Field::new("f_seq", DataType::Int64),
    ]));
    let chunks: Vec<Chunk> = (0..256)
        .map(|c| {
            let keys: Vec<i64> = (0..2048).map(|i| (c * 2048 + i) * 7919 % 1000).collect();
            let seqs: Vec<i64> = (0..2048).map(|i| (c * 2048 + i) * 2).collect();
            Chunk::new(vec![
                Arc::new(Column::Int64(keys, None)),
                Arc::new(Column::Int64(seqs, None)),
            ])
            .unwrap()
        })
        .collect();
    let fact = bfq::storage::Table::new("fact", fact_schema, chunks).unwrap();
    cat.register(fact, vec![]).unwrap();
    let dim_schema = Arc::new(Schema::new(vec![Field::new("d_key", DataType::Int64)]));
    let dim_chunk = Chunk::new(vec![Arc::new(Column::Int64((0..64).collect(), None))]).unwrap();
    let dim = bfq::storage::Table::new("dim", dim_schema, vec![dim_chunk]).unwrap();
    cat.register(dim, vec![0]).unwrap();
    cat
}

/// The dimension restriction keeps the filter from looking lossless
/// (Heuristic 3 would prune an unrestricted unique-key build side).
const STAR_SQL: &str = "select count(*) from fact, dim where f_key = d_key and d_key < 32";

fn run_star(layout: BloomLayout, dop: usize) -> (i64, u64, usize, u64) {
    let cat = Arc::new(star_catalog(layout));
    let engine = Engine::over_catalog(
        cat,
        EngineConfig::default()
            .with_bloom_mode(BloomMode::Cbo)
            .with_dop(dop)
            .with_bloom_layout(layout),
    );
    let out = engine.connect().run_sql(STAR_SQL).expect("star join");
    let count = match out.chunk.row(0)[0] {
        Datum::Int(v) => v,
        ref d => panic!("unexpected count type {d:?}"),
    };
    let mut filters = 0usize;
    out.optimized.plan.visit(&mut |node| {
        if let bfq::plan::PhysicalNode::Scan { blooms, .. }
        | bfq::plan::PhysicalNode::DerivedScan { blooms, .. } = &node.node
        {
            filters += blooms.len();
        }
    });
    let morsels = out.exec_stats.prune_totals().chunks;
    (
        count,
        out.exec_stats.filter_scratch_allocs(),
        filters,
        morsels,
    )
}

#[test]
fn steady_state_morsel_execution_is_filter_allocation_free() {
    for layout in BloomLayout::ALL {
        for dop in [1usize, 4] {
            let (count, allocs, filters, morsels) = run_star(layout, dop);
            // The join itself fixes the answer regardless of layout: keys
            // 0..64 appear as (i*7919) % 1000 hits in 0..64.
            assert!(count > 0, "star join returned nothing");
            assert!(
                filters >= 1,
                "[{layout} dop={dop}] expected a planned Bloom filter on the fact scan"
            );
            assert!(
                morsels >= 256,
                "[{layout} dop={dop}] fact scan should process every chunk, saw {morsels}"
            );
            // Zero per-morsel filter allocations: every buffer grows to the
            // (uniform) chunk size once per worker and never again, so the
            // growth count is a small per-worker constant — orders of
            // magnitude below one-per-morsel.
            let budget = 12 * dop as u64 + 16;
            assert!(
                allocs <= budget,
                "[{layout} dop={dop}] {allocs} scratch growths for {morsels} morsels \
                 (budget {budget}): filter path is allocating per morsel"
            );
        }
    }
    // Same answer on both layouts.
    let (std_count, ..) = run_star(BloomLayout::Standard, 4);
    let (blk_count, ..) = run_star(BloomLayout::Blocked, 4);
    assert_eq!(std_count, blk_count);
}

#[test]
fn blocked_chunk_indexes_skip_and_match_standard() {
    // Point lookup on a clustered key: the chunk Bloom/zone tier must skip
    // chunks under either index layout and return identical rows.
    let std_cat = Arc::new(star_catalog(BloomLayout::Standard));
    let blk_cat = Arc::new(star_catalog(BloomLayout::Blocked));
    // An odd probe value inside the clustered range: zone maps skip every
    // chunk except the one covering it, whose Bloom index proves the (even
    // valued) column cannot contain it — all 256 chunks skipped, at least
    // one via the Bloom tier, under either index layout.
    let sql = "select count(*) from fact where f_seq = 100001";
    let mut results = Vec::new();
    for cat in [std_cat, blk_cat] {
        let engine = Engine::over_catalog(
            cat,
            EngineConfig::default().with_index_mode(IndexMode::ZoneMapBloom),
        );
        let out = engine.connect().run_sql(sql).expect("point lookup");
        let p = out.exec_stats.prune_totals();
        assert_eq!(p.skipped(), 256, "every chunk is provably empty");
        assert!(
            p.skipped_bloom >= 1,
            "the covering chunk must be skipped by its Bloom index"
        );
        results.push(exact_rows(&out.chunk));
    }
    assert_eq!(results[0], results[1]);
}

#[test]
fn bloom_layout_set_plumbing_and_cache_separation() {
    let db = tpch::gen::generate(0.001, SEED).expect("generate");
    let engine = Engine::new(db, EngineConfig::default().with_dop(2));
    let mut conn = engine.connect();
    assert!(conn.set("bloom_layout", "sideways").is_err());
    conn.set("bloom_layout", "blocked").expect("SET blocked");
    assert_eq!(
        conn.options().bloom_layout,
        Some(BloomLayout::Blocked),
        "SET must record the override"
    );
    let sql = "select count(*) from orders where o_orderkey < 100";
    conn.run_sql(sql).unwrap();
    // A different layout is a different plan-cache entry: flipping the knob
    // must miss, not reuse the blocked plan.
    conn.set("bloom_layout", "standard").expect("SET standard");
    let r = conn.run_sql(sql).unwrap();
    assert!(!r.cache_hit, "layouts must not share cached plans");
    conn.set("bloom_layout", "default").expect("RESET");
    assert_eq!(conn.options().bloom_layout, None);
}
