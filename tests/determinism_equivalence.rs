//! `determinism = strict | fast` equivalence and plumbing.
//!
//! `strict` (the default) stays bit-identical to the eager executor — that
//! contract is pinned by `pipeline_equivalence.rs`. This suite pins what
//! `fast` is allowed to change and what it must preserve:
//!
//! * Full matrix: every TPC-H query × `IndexMode` × dop ∈ {1, 4, 16}
//!   returns the same row multiset as the strict oracle (normalized float
//!   rendering, since parallel partial aggregation reassociates float
//!   sums), and the same row *order* wherever the query's ORDER BY pins a
//!   total order.
//! * `fast` at dop 1 is bit-identical to `strict` (exact `Datum`
//!   equality): the serial partial path folds morsels in sequence order,
//!   so there is nothing to reassociate.
//! * `fast` is run-to-run deterministic at a fixed dop: static morsel
//!   assignment plus worker-ordered merges, not arrival order.
//! * The SET plumbing: `determinism` participates in options, EXPLAIN, and
//!   the plan-cache key.
//! * The fast sort sink buffers bounded per-worker runs for Top-N queries
//!   instead of the whole sequence-ordered input, and needs no reorder
//!   window (zero window stalls).
//! * The strict reorder window is configurable via `ExecOptions`.
//! * Fast-mode workers are scoped: no thread leaks.

mod common;

use bfq::exec::{execute_plan_pipelined_cfg, ExecOptions, SORT_RUN_ROWS};
use bfq::prelude::*;
use bfq::storage::{Column, Field, Schema, Table};
use bfq::tpch;
use common::rows_of;
use std::sync::Arc;

const SF: f64 = 0.005;
const SEED: u64 = 20260731;

/// Queries whose ORDER BY keys form a unique key over the output (group-by
/// columns, or a single aggregate row): `fast` must reproduce the strict
/// oracle row for row, not merely as a set.
const TOTALLY_ORDERED: &[usize] = &[1, 4, 6, 7, 12, 14, 16, 17, 19, 22];

fn exact_rows(chunk: &Chunk) -> Vec<Vec<Datum>> {
    (0..chunk.rows()).map(|i| chunk.row(i)).collect()
}

/// Normalized rows as an order-insensitive multiset.
fn row_set(chunk: &Chunk) -> Vec<Vec<String>> {
    let mut rows = rows_of(chunk);
    rows.sort();
    rows
}

#[test]
fn fast_mode_matches_strict_oracle_on_tpch() {
    let db = tpch::gen::generate(SF, SEED).expect("generate");
    let catalog = Arc::new(db.catalog);
    for mode in IndexMode::ALL {
        for dop in [1usize, 4, 16] {
            let config = EngineConfig::default()
                .with_bloom_mode(BloomMode::Cbo)
                .with_dop(dop)
                .with_index_mode(mode);
            let strict_conn = Engine::over_catalog(catalog.clone(), config.clone()).connect();
            let fast_conn =
                Engine::over_catalog(catalog.clone(), config.with_determinism(Determinism::Fast))
                    .connect();
            for q in tpch::supported_queries() {
                let sql = tpch::query_text(q, SF);
                let strict = strict_conn
                    .run_sql(&sql)
                    .unwrap_or_else(|e| panic!("Q{q} [{mode} dop={dop}] strict: {e}"));
                let fast = fast_conn
                    .run_sql(&sql)
                    .unwrap_or_else(|e| panic!("Q{q} [{mode} dop={dop}] fast: {e}"));
                assert_eq!(
                    row_set(&fast.chunk),
                    row_set(&strict.chunk),
                    "Q{q} [{mode} dop={dop}]: fast row multiset diverges from strict"
                );
                if TOTALLY_ORDERED.contains(&q) {
                    assert_eq!(
                        rows_of(&fast.chunk),
                        rows_of(&strict.chunk),
                        "Q{q} [{mode} dop={dop}]: fast row order diverges under a total ORDER BY"
                    );
                }
                if dop == 1 {
                    // One worker folds morsels in sequence order through a
                    // single partial state: nothing reassociates, so fast
                    // is exactly strict — floats included.
                    assert_eq!(
                        exact_rows(&fast.chunk),
                        exact_rows(&strict.chunk),
                        "Q{q} [{mode}]: fast at dop 1 must be bit-identical to strict"
                    );
                } else if mode == IndexMode::ZoneMapBloom {
                    // Run-to-run determinism at a fixed dop: static morsel
                    // assignment makes a repeat bit-identical to itself.
                    let again = fast_conn
                        .run_sql(&sql)
                        .unwrap_or_else(|e| panic!("Q{q} [{mode} dop={dop}] fast rerun: {e}"));
                    assert_eq!(
                        exact_rows(&again.chunk),
                        exact_rows(&fast.chunk),
                        "Q{q} [dop={dop}]: fast mode is not run-to-run deterministic"
                    );
                }
            }
        }
    }
}

#[test]
fn determinism_set_plumbing_and_cache_separation() {
    let db = tpch::gen::generate(0.001, SEED).expect("generate");
    let engine = Engine::new(db, EngineConfig::default().with_dop(2));
    let mut conn = engine.connect();
    assert!(conn.set("determinism", "sloppy").is_err());
    let sql = "select count(*) from orders where o_orderkey < 100";
    // Strict is the default, and EXPLAIN says so.
    let strict = conn.run_sql(sql).unwrap();
    assert_eq!(strict.determinism, Determinism::Strict);
    assert!(
        strict.explain().contains("determinism: strict"),
        "EXPLAIN must report the mode:\n{}",
        strict.explain()
    );
    conn.set("determinism", "fast").expect("SET fast");
    assert_eq!(
        conn.options().determinism,
        Some(Determinism::Fast),
        "SET must record the override"
    );
    // A different mode is a different plan-cache entry: flipping the knob
    // must miss, not reuse the strict plan.
    let fast = conn.run_sql(sql).unwrap();
    assert!(!fast.cache_hit, "modes must not share cached plans");
    assert_eq!(fast.determinism, Determinism::Fast);
    assert!(fast.explain().contains("determinism: fast"));
    assert_eq!(exact_rows(&fast.chunk), exact_rows(&strict.chunk));
    conn.set("determinism", "default").expect("RESET");
    assert_eq!(conn.options().determinism, None);
}

/// A single-column table with far more rows than the fast sort sink's run
/// size, so the bound on buffered rows is observable: 256 chunks × 512
/// rows.
const CHUNKS: usize = 256;
const CHUNK_ROWS: usize = 512;
const DOP: usize = 4;

fn wide_catalog() -> Arc<bfq::catalog::Catalog> {
    let schema = Arc::new(Schema::new(vec![Field::new("v", DataType::Float64)]));
    let chunks = (0..CHUNKS)
        .map(|c| {
            let vals: Vec<f64> = (0..CHUNK_ROWS)
                .map(|i| ((c * CHUNK_ROWS + i) * 7919 % 1_000_003) as f64 * 0.25)
                .collect();
            Chunk::new(vec![Arc::new(Column::Float64(vals, None))]).unwrap()
        })
        .collect();
    let mut cat = bfq::catalog::Catalog::new();
    cat.register(Table::new("wide", schema, chunks).unwrap(), vec![])
        .unwrap();
    Arc::new(cat)
}

#[test]
fn fast_top_n_sort_buffers_bounded_runs() {
    let catalog = wide_catalog();
    let run = |mode: Determinism| {
        let engine = Engine::over_catalog(
            catalog.clone(),
            EngineConfig::default()
                .with_dop(DOP)
                // Pruning off so the scan really touches every chunk.
                .with_index_mode(IndexMode::Off)
                .with_determinism(mode),
        );
        engine
            .connect()
            .run_sql("select v from wide order by v desc limit 16")
            .expect("top-n")
    };
    let strict = run(Determinism::Strict);
    let fast = run(Determinism::Fast);
    // Distinct sort keys pin a total order, and the values flow straight
    // from the scan: the Top-N answer is exactly equal.
    assert_eq!(exact_rows(&fast.chunk), exact_rows(&strict.chunk));

    let table_rows = (CHUNKS * CHUNK_ROWS) as u64;
    let strict_peak = strict.exec_stats.peak_buffered_rows();
    let fast_peak = fast.exec_stats.peak_buffered_rows();
    assert!(
        strict_peak >= table_rows,
        "strict sort must buffer the sequence-ordered input ({strict_peak} < {table_rows})"
    );
    // Each fast worker buffers at most one run of pending rows plus the
    // morsel being folded; flushed runs are truncated to the limit. The
    // extra CHUNK_ROWS of slack absorbs the Top-N output and the
    // truncated runs awaiting the seal merge.
    let bound = (DOP * (SORT_RUN_ROWS + 2 * CHUNK_ROWS)) as u64 + CHUNK_ROWS as u64;
    assert!(
        fast_peak <= bound,
        "fast sort peak {fast_peak} exceeds the run bound {bound}"
    );
    assert!(fast_peak < strict_peak);
    // Fast sinks fold partials instead of consuming through the reorder
    // window, so nothing ever stalls waiting for sequence order.
    assert_eq!(
        fast.exec_stats.window_stalls(),
        0,
        "fast mode must not take the reorder-window path"
    );
}

#[test]
fn reorder_window_is_configurable() {
    let catalog = wide_catalog();
    let engine = Engine::over_catalog(
        catalog.clone(),
        EngineConfig::default()
            .with_dop(DOP)
            .with_index_mode(IndexMode::Off),
    );
    let piped = engine
        .connect()
        .run_sql("select sum(v) from wide where v >= 0")
        .expect("pipeline");
    let plan = &piped.optimized.plan;
    let tight = execute_plan_pipelined_cfg(
        plan,
        catalog.clone(),
        ExecOptions {
            dop: DOP,
            index_mode: IndexMode::Off,
            reorder_window: 1,
            ..Default::default()
        },
    )
    .expect("tight window");
    assert_eq!(exact_rows(&tight.chunk), exact_rows(&piped.chunk));
    // One morsel of window per worker, plus one in flight per worker and
    // the one being consumed: the backpressure bound scales down with the
    // configured window.
    let tight_bound = ((DOP + DOP + 1) * CHUNK_ROWS) as u64;
    assert!(
        tight.stats.peak_buffered_rows() <= tight_bound,
        "peak {} exceeds the tightened window bound {tight_bound}",
        tight.stats.peak_buffered_rows()
    );
}

#[cfg(target_os = "linux")]
fn live_threads() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line")
}

#[test]
fn fast_mode_leaks_no_worker_threads() {
    let db = tpch::gen::generate(SF, SEED).expect("generate");
    let engine = Engine::new(
        db,
        EngineConfig::default()
            .with_bloom_mode(BloomMode::Cbo)
            .with_dop(16)
            .with_determinism(Determinism::Fast),
    );
    let conn = engine.connect();
    #[cfg(target_os = "linux")]
    let before = live_threads();
    // Aggregation, sort, and repartition all take their fast sinks here.
    let out = conn
        .run_sql(&tpch::query_text(18, SF))
        .expect("q18 under fast mode");
    assert_eq!(out.determinism, Determinism::Fast);
    #[cfg(target_os = "linux")]
    {
        // Scoped workers from other tests in this binary may be mid-exit
        // at either sample, so retry; a leaked worker never exits.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let after = live_threads();
            if after <= before {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "fast-mode execution leaked worker threads ({before} before, {after} after)"
            );
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
    }
}
