//! End-to-end integration: every TPC-H query parses, binds, optimizes under
//! every Bloom mode, executes, and — the critical invariant — **returns
//! identical results in all three modes**. Bloom filters are an optimization,
//! never a semantics change.

use bfq::prelude::*;
use bfq::tpch;
use std::sync::Arc;

mod common;
use common::rows_of as chunk_to_rows;

const SF: f64 = 0.005;
const SEED: u64 = 20260610;

fn session(mode: BloomMode) -> Connection {
    let db = tpch::gen::generate(SF, SEED).expect("generate");
    Engine::new(
        db,
        EngineConfig::default().with_bloom_mode(mode).with_dop(3),
    )
    .connect()
}

fn run(conn: &Connection, q: usize) -> QueryResult {
    let sql = tpch::query_text(q, SF);
    conn.run_sql(&sql)
        .unwrap_or_else(|e| panic!("Q{q} failed: {e}"))
}

#[test]
fn all_queries_agree_across_bloom_modes() {
    let none = session(BloomMode::None);
    let post = session(BloomMode::Post);
    let cbo = session(BloomMode::Cbo);
    for q in tpch::supported_queries() {
        let r_none = run(&none, q);
        let r_post = run(&post, q);
        let r_cbo = run(&cbo, q);
        let rows_none = chunk_to_rows(&r_none.chunk);
        let rows_post = chunk_to_rows(&r_post.chunk);
        let rows_cbo = chunk_to_rows(&r_cbo.chunk);
        assert_eq!(
            rows_none,
            rows_post,
            "Q{q}: BF-Post results differ from No-BF\nplan:\n{}",
            r_post.explain()
        );
        assert_eq!(
            rows_none,
            rows_cbo,
            "Q{q}: BF-CBO results differ from No-BF\nplan:\n{}",
            r_cbo.explain()
        );
    }
}

#[test]
fn bloom_modes_actually_place_filters() {
    let cbo = session(BloomMode::Cbo);
    let mut total_filters = 0;
    for q in tpch::TABLE2_QUERIES {
        let sql = tpch::query_text(q, SF);
        let planned = cbo.plan_sql_only(&sql).unwrap();
        total_filters += planned.stats.cbo_filters + planned.stats.post_filters;
    }
    assert!(
        total_filters >= 5,
        "expected several Bloom filters across Table-2 queries, got {total_filters}"
    );
}

#[test]
fn index_modes_never_change_results() {
    // Data skipping is an optimization, never a semantics change: every
    // supported query returns identical rows with chunk indexes off and
    // fully on.
    let db = tpch::gen::generate(SF, SEED).expect("generate");
    let catalog = Arc::new(db.catalog);
    let session_with = |mode: IndexMode| {
        Engine::over_catalog(
            catalog.clone(),
            EngineConfig::default()
                .with_bloom_mode(BloomMode::Cbo)
                .with_dop(3)
                .with_index_mode(mode),
        )
        .connect()
    };
    let off = session_with(IndexMode::Off);
    let zb = session_with(IndexMode::ZoneMapBloom);
    for q in tpch::supported_queries() {
        let r_off = run(&off, q);
        let r_zb = run(&zb, q);
        assert_eq!(
            chunk_to_rows(&r_off.chunk),
            chunk_to_rows(&r_zb.chunk),
            "Q{q}: zonemap+bloom results differ from index off\nplan:\n{}",
            r_zb.explain()
        );
    }
}

#[test]
fn q6_skips_most_lineitem_chunks() {
    // Q6's one-year l_shipdate window must skip the majority of the
    // date-clustered lineitem chunks via zone maps. Use a scale where
    // lineitem spans plenty of chunks.
    let db = tpch::gen::generate(0.02, SEED).expect("generate");
    let session = Engine::new(
        db,
        EngineConfig::default()
            .with_bloom_mode(BloomMode::Cbo)
            .with_dop(3)
            .with_index_mode(IndexMode::ZoneMapBloom),
    )
    .connect();
    let sql = tpch::query_text(6, 0.02);
    let r = session.run_sql(&sql).expect("Q6");
    let mut prune = None;
    r.optimized.plan.visit(&mut |node| {
        if let bfq::plan::PhysicalNode::Scan { alias, .. } = &node.node {
            if alias == "lineitem" {
                prune = r.exec_stats.prune_of(node.id);
            }
        }
    });
    let p = prune.expect("lineitem scan records prune counters");
    assert!(
        p.chunks >= 10,
        "expected many lineitem chunks, got {}",
        p.chunks
    );
    assert!(
        p.skipped() * 2 > p.chunks,
        "expected >50% of lineitem chunks skipped, got {p:?}"
    );
    assert!(
        p.skipped_zonemap > 0,
        "Q6 pruning should be zone-map driven: {p:?}"
    );
    assert!(
        r.explain().contains("index pruning:"),
        "explain surfaces counters"
    );
}

#[test]
fn query_results_have_expected_shapes() {
    let s = session(BloomMode::Cbo);
    // Q1: at most 4 (returnflag, linestatus) groups at tiny SF.
    let r = run(&s, 1);
    assert!(r.chunk.rows() >= 2 && r.chunk.rows() <= 6);
    assert_eq!(r.chunk.width(), 10);
    assert_eq!(r.column_names.len(), 10);
    // Q3: at most 10 rows (LIMIT).
    let r = run(&s, 3);
    assert!(r.chunk.rows() <= 10);
    // Q6: scalar.
    let r = run(&s, 6);
    assert_eq!(r.chunk.rows(), 1);
    // Q19: scalar.
    let r = run(&s, 19);
    assert_eq!(r.chunk.rows(), 1);
}
