//! bfq-server integration tests: a real TCP server over a real engine.
//!
//! Covered here:
//! * concurrent clients get results identical to a direct in-process run;
//! * admission control rejects with `server_busy` when the queue is full,
//!   and recovers once capacity frees up;
//! * out-of-band CANCEL interrupts a streaming query mid-flight, the
//!   session stays usable, and no engine worker threads leak;
//! * `SET statement_timeout` fails slow queries with a timeout message;
//! * the `metrics` command reports exact server-side counters.

use std::sync::Arc;
use std::time::Duration;

use bfq::prelude::*;
use bfq::tpch;
use bfq_server::{Client, Server, ServerConfig, CODE_PROTOCOL, CODE_SERVER_BUSY};

const SF: f64 = 0.01;
const SEED: u64 = 20260809;

fn test_engine() -> Arc<Engine> {
    let db = tpch::gen::generate(SF, SEED).expect("generate");
    Engine::new(
        db,
        EngineConfig::default()
            .with_bloom_mode(BloomMode::Cbo)
            .with_dop(2),
    )
}

fn start(engine: Arc<Engine>, workers: usize, queue_depth: usize) -> Server {
    Server::start(
        engine,
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers,
            queue_depth,
            poll_interval: Duration::from_millis(20),
        },
    )
    .expect("server start")
}

/// Pull one metric value out of Prometheus text.
fn metric(text: &str, name: &str) -> u64 {
    text.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("metric {name} missing from:\n{text}"))
        .trim()
        .parse()
        .expect("metric value")
}

#[test]
fn concurrent_clients_get_identical_results() {
    const CLIENTS: usize = 8;
    const ROUNDS: usize = 3;
    let engine = test_engine();
    let sql = "select o_orderpriority, count(*) as n from orders, lineitem \
               where l_orderkey = o_orderkey and o_orderdate < date '1996-01-01' \
               group by o_orderpriority order by o_orderpriority";
    // Reference: the same engine, in process.
    let reference = engine.connect().run_sql(sql).expect("reference");
    let expected: Vec<Vec<Datum>> = (0..reference.chunk.rows())
        .map(|i| reference.chunk.row(i))
        .collect();

    let server = start(engine, CLIENTS, CLIENTS);
    let addr = server.local_addr();
    let results: Vec<Vec<Vec<Vec<Datum>>>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    // Mix ad-hoc and prepared executions of the same query.
                    client.prepare("q", sql).expect("prepare");
                    let mut runs = Vec::new();
                    for round in 0..ROUNDS {
                        let rows = if round % 2 == 0 {
                            client.query(sql).expect("query").rows
                        } else {
                            client.execute("q", &[]).expect("execute").rows
                        };
                        runs.push(rows);
                    }
                    client.quit().expect("quit");
                    runs
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    for (i, runs) in results.iter().enumerate() {
        for (j, rows) in runs.iter().enumerate() {
            assert_eq!(rows, &expected, "client {i} run {j} diverged");
        }
    }
    assert_eq!(
        server.metrics().queries_started.get(),
        (CLIENTS * ROUNDS) as u64
    );
    // `quit` acks before the worker finishes closing the session, so the
    // active-connections gauge drains shortly after, not instantly.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.metrics().active_connections() > 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "sessions never closed: {} still active",
            server.metrics().active_connections()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    server.shutdown();
}

#[test]
fn typed_values_roundtrip_over_the_wire() {
    let engine = test_engine();
    let sql = "select o_orderkey, o_orderdate, o_orderpriority, o_totalprice \
               from orders order by o_orderkey limit 5";
    let reference = engine.connect().run_sql(sql).expect("reference");
    let expected: Vec<Vec<Datum>> = (0..reference.chunk.rows())
        .map(|i| reference.chunk.row(i))
        .collect();
    let server = start(engine, 2, 2);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let rows = client.query(sql).expect("query");
    assert_eq!(
        rows.types,
        vec![
            DataType::Int64,
            DataType::Date,
            DataType::Utf8,
            DataType::Float64
        ]
    );
    assert_eq!(rows.rows, expected, "wire roundtrip altered values");

    // Parameters bind over the wire too (a date parameter, structurally).
    client
        .prepare("byday", "select count(*) from orders where o_orderdate < ?")
        .expect("prepare");
    let cutoff = Datum::Date(bfq::common::date::parse_date("1995-01-01").expect("date"));
    let narrow = client.execute("byday", &[cutoff]).expect("execute");
    let wide = client
        .execute(
            "byday",
            &[Datum::Date(
                bfq::common::date::parse_date("1999-01-01").expect("date"),
            )],
        )
        .expect("execute");
    let n = |rs: &bfq_server::RowSet| rs.rows[0][0].as_i64().expect("count");
    assert!(n(&narrow) < n(&wide), "{} !< {}", n(&narrow), n(&wide));

    // EXPLAIN and SET travel through the `query` command.
    let plan = client
        .query("explain select count(*) from orders")
        .expect("explain");
    assert_eq!(plan.columns, vec!["plan".to_string()]);
    assert!(plan
        .rows
        .iter()
        .any(|r| r[0].as_str().is_some_and(|line| line.contains("HashAgg"))));
    let set = client.query("set dop = 1").expect("set via query");
    assert!(set.rows.is_empty());
    client.quit().expect("quit");
    server.shutdown();
}

#[test]
fn admission_control_rejects_when_full_then_recovers() {
    let engine = test_engine();
    let server = start(engine, 1, 0);
    let addr = server.local_addr();

    // First client occupies the only worker.
    let mut first = Client::connect(addr).expect("first connect");
    first.ping().expect("ping");

    // With no queue, the second connection is rejected outright.
    match Client::connect(addr) {
        Err(e) if e.is_code(CODE_SERVER_BUSY) => {}
        Err(other) => panic!("expected server_busy, got {other}"),
        Ok(_) => panic!("expected server_busy, got an admitted connection"),
    }
    assert_eq!(server.metrics().connections_rejected.get(), 1);

    // Capacity frees up when the first client leaves.
    first.quit().expect("quit");
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let mut third = loop {
        match Client::connect(addr) {
            Ok(c) => break c,
            Err(e) if e.is_code(CODE_SERVER_BUSY) => {
                assert!(
                    std::time::Instant::now() < deadline,
                    "server never recovered after quit"
                );
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    };
    third.ping().expect("ping after recovery");
    third.quit().expect("quit");
    server.shutdown();
}

#[cfg(target_os = "linux")]
fn live_threads() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line")
}

#[test]
fn cancel_interrupts_a_streaming_query_mid_flight() {
    let engine = test_engine();
    let server = start(engine, 2, 2);
    let addr = server.local_addr();

    let mut victim = Client::connect(addr).expect("victim connect");
    let mut canceller = Client::connect(addr).expect("canceller connect");
    let (conn_id, secret) = (victim.conn_id(), victim.secret());

    // A wrong secret never cancels.
    assert!(!canceller.cancel(conn_id, secret ^ 1).expect("bad secret"));
    // Cancelling an idle session is a no-op.
    assert!(!canceller.cancel(conn_id, secret).expect("idle cancel"));

    // The self-join inflates lineitem ~7x, so the result far exceeds the
    // socket buffers: the server still streams when the cancel lands.
    let big = "select l1.l_orderkey, l1.l_extendedprice, l2.l_extendedprice \
               from lineitem l1, lineitem l2 where l1.l_orderkey = l2.l_orderkey";
    #[cfg(target_os = "linux")]
    let threads_before = live_threads();
    let outcome = {
        let mut stream = victim.query_stream(big).expect("stream starts");
        let first = stream.next_chunk().expect("first chunk");
        assert!(first.is_some(), "expected at least one chunk before cancel");
        assert!(
            canceller.cancel(conn_id, secret).expect("cancel"),
            "cancel should find the query in flight"
        );
        // Keep reading: the error frame arrives once the engine unwinds.
        loop {
            match stream.next_chunk() {
                Ok(Some(_)) => {}
                Ok(None) => break Ok(stream.total_rows()),
                Err(e) => break Err(e),
            }
        }
    };
    match outcome {
        Err(e) if e.is_code("cancelled") => {
            let msg = &e.remote().expect("remote").message;
            assert!(msg.contains("cancelled by client"), "message: {msg}");
        }
        other => panic!("expected cancelled error, got {other:?}"),
    }

    // The victim session survives the cancelled query.
    let after = victim
        .query("select count(*) from orders")
        .expect("victim lives");
    assert_eq!(after.rows.len(), 1);

    // No engine worker threads leaked (server pool threads persist, so the
    // count returns to the pre-query level).
    #[cfg(target_os = "linux")]
    {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let now = live_threads();
            if now <= threads_before {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "cancelled server query leaked threads ({threads_before} before, {now} after)"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    let text = victim.metrics().expect("metrics");
    assert_eq!(metric(&text, "bfq_server_queries_cancelled_total"), 1);
    assert_eq!(metric(&text, "bfq_server_cancels_delivered_total"), 1);
    victim.quit().expect("quit");
    canceller.quit().expect("quit");
    server.shutdown();
}

#[test]
fn statement_timeout_fails_slow_queries_over_the_wire() {
    let engine = test_engine();
    let server = start(engine, 1, 1);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.set("dop", "1").expect("set dop");
    client.set("statement_timeout", "1").expect("set timeout");
    let slow = "select l1.l_orderkey from lineitem l1, lineitem l2, lineitem l3 \
                where l1.l_orderkey = l2.l_orderkey and l2.l_orderkey = l3.l_orderkey";
    match client.query(slow) {
        Err(e) if e.is_code("cancelled") => {
            let msg = &e.remote().expect("remote").message;
            assert!(msg.contains("timeout"), "message: {msg}");
            let text = client.metrics().expect("metrics");
            assert_eq!(metric(&text, "bfq_server_queries_timed_out_total"), 1);
        }
        Err(other) => panic!("expected timeout, got {other}"),
        // Lazy deadline checks mean an absurdly fast machine could finish
        // first; that is not a failure of the mechanism.
        Ok(_) => {}
    }
    // `SET statement_timeout = 0` turns it back off.
    client.set("statement_timeout", "0").expect("reset");
    let ok = client.query("select count(*) from lineitem").expect("runs");
    assert_eq!(ok.rows.len(), 1);
    client.quit().expect("quit");
    server.shutdown();
}

#[test]
fn metrics_counters_are_exact() {
    let engine = test_engine();
    let server = start(engine, 2, 2);
    let mut client = Client::connect(server.local_addr()).expect("connect");

    client.ping().expect("ping");
    for _ in 0..3 {
        client.query("select count(*) from nation").expect("query");
    }
    client
        .prepare("n", "select n_name from nation where n_nationkey = ?")
        .expect("prepare");
    for key in [1_i64, 2] {
        let rows = client.execute("n", &[Datum::Int(key)]).expect("execute");
        assert_eq!(rows.rows.len(), 1);
    }
    client.close_statement("n").expect("close");

    let text = client.metrics().expect("metrics");
    // ping + 3 query + prepare + 2 execute + close + this metrics request.
    assert_eq!(metric(&text, "bfq_server_requests_total"), 9);
    assert_eq!(metric(&text, "bfq_server_queries_started_total"), 5);
    assert_eq!(metric(&text, "bfq_server_queries_finished_total"), 5);
    assert_eq!(metric(&text, "bfq_server_queries_cancelled_total"), 0);
    assert_eq!(metric(&text, "bfq_server_queries_timed_out_total"), 0);
    assert_eq!(metric(&text, "bfq_server_connections_accepted_total"), 1);
    assert_eq!(metric(&text, "bfq_server_connections_rejected_total"), 0);
    assert_eq!(metric(&text, "bfq_server_active_connections"), 1);
    assert_eq!(metric(&text, "bfq_server_in_flight_queries"), 0);
    // The engine's registry rides along in the same text.
    assert!(text.contains("bfq_queries_total"));

    client.quit().expect("quit");
    server.shutdown();
}

#[test]
fn malformed_frames_get_protocol_errors_without_killing_the_session() {
    use std::io::{BufRead, BufReader, Write};
    let engine = test_engine();
    let server = start(engine, 1, 1);
    let stream = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("hello");
    assert!(line.contains("\"hello\""), "got: {line}");

    for (bad, expect_code) in [
        ("this is not json\n", CODE_PROTOCOL),
        ("{\"cmd\":\"warp\"}\n", CODE_PROTOCOL),
        ("{\"cmd\":\"query\"}\n", CODE_PROTOCOL),
        (
            "{\"cmd\":\"query\",\"sql\":\"select nope from nowhere\"}\n",
            "catalog",
        ),
    ] {
        writer.write_all(bad.as_bytes()).expect("write");
        line.clear();
        reader.read_line(&mut line).expect("response");
        assert!(
            line.contains(&format!("\"code\":\"{expect_code}\"")),
            "for {bad:?} got: {line}"
        );
    }
    // The session still works after every error.
    writer
        .write_all(b"{\"cmd\":\"ping\"}\n")
        .expect("write ping");
    line.clear();
    reader.read_line(&mut line).expect("pong");
    assert!(line.contains("\"ok\""), "got: {line}");
    server.shutdown();
}

#[test]
fn shutdown_interrupts_idle_and_queued_sessions() {
    let engine = test_engine();
    let server = start(engine, 2, 4);
    let addr = server.local_addr();
    let _idle1 = Client::connect(addr).expect("idle client");
    let _idle2 = Client::connect(addr).expect("idle client");
    // Shutdown returns only after joining every thread — idle sessions
    // must not hold it hostage.
    server.shutdown();
}

#[test]
fn endless_line_without_newline_is_cut_off_at_the_request_cap() {
    use std::io::Write;
    let engine = test_engine();
    let server = start(engine, 1, 1);
    let addr = server.local_addr();
    let stream = std::net::TcpStream::connect(addr).expect("connect");
    stream
        .set_write_timeout(Some(Duration::from_secs(2)))
        .expect("write timeout");
    let mut writer = stream.try_clone().expect("clone");

    // Stream junk with no newline, forever as far as the client is
    // concerned. The server must stop consuming at its 8 MiB request cap
    // and hang up, rather than buffering the line without bound — so well
    // under this 64 MiB budget, our writes must start failing (connection
    // closed) or time out (server stopped reading).
    let chunk = vec![b'x'; 1 << 20];
    let mut accepted: usize = 0;
    for _ in 0..64 {
        match writer.write_all(&chunk) {
            Ok(()) => accepted += chunk.len(),
            Err(_) => break,
        }
    }
    assert!(
        accepted < 32 << 20,
        "server consumed {accepted} bytes of a newline-less line; \
         the request cap should have cut it off near 8 MiB"
    );

    // The server survives the abuse: fresh sessions still work.
    let mut client = Client::connect(addr).expect("connect after abuse");
    client.ping().expect("ping");
    client.quit().expect("quit");
    server.shutdown();
}

#[test]
fn set_statement_timeout_applies_to_already_prepared_statements() {
    let engine = test_engine();
    let server = start(engine, 1, 1);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.set("dop", "1").expect("set dop");
    let slow = "select l1.l_orderkey from lineitem l1, lineitem l2, lineitem l3 \
                where l1.l_orderkey = l2.l_orderkey and l2.l_orderkey = l3.l_orderkey";
    // Prepare *before* SET: the timeout must still apply at EXECUTE time.
    client.prepare("slow", slow).expect("prepare");
    client.set("statement_timeout", "1").expect("set timeout");
    match client.execute("slow", &[]) {
        Err(e) if e.is_code("cancelled") => {
            let msg = &e.remote().expect("remote").message;
            assert!(msg.contains("timeout"), "message: {msg}");
        }
        Err(other) => panic!("expected timeout, got {other}"),
        // Lazy deadline checks mean an absurdly fast machine could finish
        // first; that is not a failure of the mechanism.
        Ok(_) => {}
    }
    // Resetting the knob applies to already-prepared statements too.
    client
        .prepare("fast", "select count(*) from nation")
        .expect("prepare fast");
    client.set("statement_timeout", "default").expect("reset");
    let ok = client.execute("fast", &[]).expect("runs");
    assert_eq!(ok.rows.len(), 1);
    client.quit().expect("quit");
    server.shutdown();
}

#[test]
fn explain_analyze_timeout_is_counted_against_the_explain_itself() {
    let engine = test_engine();
    let server = start(engine, 1, 1);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.set("dop", "1").expect("set dop");
    client.set("statement_timeout", "1").expect("set timeout");
    let slow = "explain analyze select l1.l_orderkey from lineitem l1, lineitem l2, lineitem l3 \
                where l1.l_orderkey = l2.l_orderkey and l2.l_orderkey = l3.l_orderkey";
    match client.query(slow) {
        Err(e) if e.is_code("cancelled") => {
            // The timed-out EXPLAIN must settle the counter immediately —
            // not leave the fired token's reason on the session hub for
            // the next query to claim.
            let text = client.metrics().expect("metrics");
            assert_eq!(metric(&text, "bfq_server_queries_timed_out_total"), 1);
            client.set("statement_timeout", "0").expect("reset");
            client.query("select count(*) from nation").expect("query");
            let text = client.metrics().expect("metrics");
            assert_eq!(metric(&text, "bfq_server_queries_timed_out_total"), 1);
            assert_eq!(metric(&text, "bfq_server_queries_cancelled_total"), 0);
        }
        Err(other) => panic!("expected timeout, got {other}"),
        Ok(_) => {} // absurdly fast machine; mechanism not at fault
    }
    client.quit().expect("quit");
    server.shutdown();
}

#[test]
fn shutdown_completes_while_streaming_to_a_stalled_client() {
    use std::io::Write;
    let engine = test_engine();
    let server = start(engine, 1, 1);
    let addr = server.local_addr();
    let stream = std::net::TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    // Ask for a large result, then never read a byte: once the socket
    // buffers fill, the session blocks in write. Shutdown must still
    // complete — the write timeout wakes the session to see the flag.
    writer
        .write_all(b"{\"cmd\":\"query\",\"sql\":\"select l_orderkey, l_comment from lineitem\"}\n")
        .expect("send query");
    std::thread::sleep(Duration::from_millis(300));
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        server.shutdown();
        let _ = tx.send(());
    });
    rx.recv_timeout(Duration::from_secs(10))
        .expect("shutdown hung on a session blocked writing to a stalled client");
    drop(stream);
}
