//! Predicate transfer through chained Bloom filters (paper §2 and Fig. 3d).
//!
//! A selective predicate on a small relation at the end of a join chain can
//! reduce every other relation — if the optimizer arranges the join order so
//! filters can be built. This example contrasts plan and latency of BF-Post
//! vs BF-CBO on a chain engineered for transfer.
//!
//! Run with: `cargo run --release --example predicate_transfer`

use std::sync::Arc;

use bfq::core::synth::{chain_block, ChainSpec};
use bfq::core::{optimize_bare_block, BloomMode, OptimizerConfig};
use bfq::exec::execute_plan;
use bfq::prelude::*;

fn main() -> Result<()> {
    // fact(500k) -> mid(50k) -> dim(2k, keeps 2%): the dim predicate is
    // worth transferring all the way to fact.
    let fx = chain_block(&[
        ChainSpec::new("fact", 500_000),
        ChainSpec::new("mid", 50_000),
        ChainSpec::new("dim", 2_000).filtered(0.02),
    ]);
    let catalog = Arc::new(fx.catalog.clone());

    for mode in [BloomMode::None, BloomMode::Post, BloomMode::Cbo] {
        let mut fx = chain_block(&[
            ChainSpec::new("fact", 500_000),
            ChainSpec::new("mid", 50_000),
            ChainSpec::new("dim", 2_000).filtered(0.02),
        ]);
        let mut config = OptimizerConfig::with_mode(mode);
        config.bf_min_apply_rows = 1_000.0;
        let cat = Arc::new(fx.catalog.clone());
        let planned = optimize_bare_block(&fx.block, &mut fx.bindings, &cat, &config)?;
        let t = std::time::Instant::now();
        let out = execute_plan(&planned.plan, cat.clone(), config.dop)?;
        let ms = t.elapsed().as_secs_f64() * 1e3;
        println!("== {mode:?} ==");
        println!("{}", planned.plan.explain(&|c| c.to_string()));
        println!(
            "rows={}  filters(cbo={}, post={})  latency={ms:.1} ms\n",
            out.chunk.rows(),
            planned.stats.cbo_filters,
            planned.stats.post_filters,
        );
    }
    let _ = catalog;
    Ok(())
}
