//! The serving API: shared `Engine`, per-client `Connection`s, prepared
//! statements with parameter binding, and streaming results.
//!
//! Run with: `cargo run --release --example prepared_statements`

use bfq::common::date::parse_date;
use bfq::prelude::*;
use bfq::tpch;

fn main() -> Result<()> {
    // One shared engine for the whole process: catalog + plan cache.
    let db = tpch::gen::generate(0.01, 42)?;
    let engine = Engine::new(
        db,
        EngineConfig::default()
            .with_bloom_mode(BloomMode::Cbo)
            .with_index_mode(IndexMode::ZoneMapBloom)
            .with_dop(4),
    );
    let conn = engine.connect();

    // Prepare once: parse + bind + BF-CBO optimization happen here.
    let stmt = conn.prepare(
        "select o_orderpriority, count(*) as n
         from orders, lineitem
         where l_orderkey = o_orderkey
           and o_orderdate >= $1 and o_orderdate < $2
           and l_quantity < $3
         group by o_orderpriority
         order by o_orderpriority",
    )?;
    println!(
        "prepared: {} parameters, columns {:?}",
        stmt.param_count(),
        stmt.column_names()
    );

    // Execute many times with different bindings — no re-planning.
    for year in [1993, 1994, 1995] {
        let lo = Datum::Date(parse_date(&format!("{year}-01-01")).unwrap());
        let hi = Datum::Date(parse_date(&format!("{}-01-01", year + 1)).unwrap());
        let result = stmt.execute(&[lo, hi, Datum::Int(25)])?;
        println!("\n{year}: {} priority groups", result.chunk.rows());
        for i in 0..result.chunk.rows() {
            let row: Vec<String> = result.chunk.row(i).iter().map(|d| d.to_string()).collect();
            println!("  {}", row.join(" | "));
        }
    }

    // Streaming: chunks arrive incrementally instead of one gathered chunk.
    let mut rows = 0usize;
    let mut chunks = 0usize;
    let stream = conn.execute_stream(
        "select l_orderkey, l_extendedprice from lineitem where l_shipdate < date '1992-06-01'",
    )?;
    for chunk in stream {
        let chunk = chunk?;
        chunks += 1;
        rows += chunk.rows();
    }
    println!("\nstreamed {rows} rows in {chunks} chunks");

    // SET-style per-connection overrides and the shared plan cache.
    let mut ad_hoc = engine.connect();
    ad_hoc.set("bloom_mode", "none")?;
    ad_hoc.set("dop", "2")?;
    let sql = "select count(*) from orders where o_orderpriority = '1-URGENT'";
    let first = ad_hoc.run_sql(sql)?;
    let second = ad_hoc.run_sql(sql)?;
    println!(
        "\nad-hoc under bloom_mode=none: {} urgent orders (first run cache_hit={}, second {})",
        first.chunk.row(0)[0],
        first.cache_hit,
        second.cache_hit
    );
    let stats = engine.cache_stats();
    println!(
        "plan cache: {} hits, {} misses, {} entries (hit rate {:.0}%)",
        stats.hits,
        stats.misses,
        stats.entries,
        100.0 * stats.hit_rate()
    );
    Ok(())
}
