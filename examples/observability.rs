//! Observability: `EXPLAIN ANALYZE`, phase spans, the engine metrics
//! registry, and the query flight recorder.
//!
//! Run with: `cargo run --release --example observability`

use bfq::prelude::*;
use bfq::tpch;

fn main() -> Result<()> {
    let sf = 0.01;
    let db = tpch::gen::generate(sf, 42)?;
    let engine = Engine::new(
        db,
        EngineConfig::default()
            .with_bloom_mode(BloomMode::Cbo)
            .with_dop(4)
            .with_flight_recorder_capacity(16),
    );
    let mut conn = engine.connect();

    // EXPLAIN ANALYZE executes the query and annotates every plan node
    // with actual rows, est-vs-actual q-error and per-operator wall time,
    // then lists each runtime filter's predicted pass fraction (from the
    // optimizer's FPR model, paper §3.5) next to the pass fraction the
    // executor observed — the planner's est-vs-actual feedback loop.
    let q3 = tpch::query_text(3, sf);
    let analyzed = conn.run_sql(&format!("explain analyze {q3}"))?;
    println!("=== EXPLAIN ANALYZE Q3 ===");
    for i in 0..analyzed.chunk.rows() {
        if let Datum::Str(line) = &analyzed.chunk.row(i)[0] {
            println!("{line}");
        }
    }

    // Plain EXPLAIN plans without executing; the phase breakdown on any
    // executed result shows where the time went. Q5 is cold here — the
    // EXPLAIN ANALYZE above already cached Q3's plan.
    let q5 = tpch::query_text(5, sf);
    let r = conn.run_sql(&q5)?;
    println!("\n=== phase spans (cold) ===\n{}", r.phases.render());
    let r = conn.run_sql(&q5)?;
    println!(
        "=== phase spans (plan-cache hit) ===\n{}",
        r.phases.render()
    );

    // Profiling is on by default; `SET profile = off` removes the
    // per-operator clock reads while keeping row counts and filter
    // observations (the plan cache is shared across both settings).
    conn.set("profile", "off")?;
    let unprofiled = conn.run_sql(&q3)?;
    assert!(unprofiled.exec_stats.profiles().is_empty());
    conn.set("profile", "default")?;

    // Engine-wide metrics snapshot, rendered as Prometheus text — ready
    // for a scrape endpoint.
    conn.run_sql(&tpch::query_text(6, sf))?;
    let snap = engine.metrics();
    println!("=== Engine::metrics() ===\n{}", snap.to_prometheus_text());

    // The flight recorder keeps the last N query profiles, newest first.
    println!("=== Engine::recent_queries() ===");
    for p in engine.recent_queries() {
        println!(
            "  fp={:016x} cache_hit={} rows_out={} exec={:.2}ms  {}",
            p.plan_fingerprint,
            p.cache_hit,
            p.rows_out,
            p.phases.execute_ns as f64 / 1e6,
            p.sql
                .split_whitespace()
                .take(6)
                .collect::<Vec<_>>()
                .join(" "),
        );
    }
    Ok(())
}
