//! Run any TPC-H query under all three Bloom modes and compare plans.
//!
//! Usage: `cargo run --release --example tpch_demo -- [query_number]`
//! (defaults to Q12, the paper's Figure 1 query).

use bfq::prelude::*;
use bfq::tpch;

fn main() -> Result<()> {
    let q: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(12);
    let sf = 0.02;
    let sql = tpch::query_text(q, sf);
    println!("# TPC-H Q{q} at SF {sf}\n{sql}\n");

    for mode in [BloomMode::None, BloomMode::Post, BloomMode::Cbo] {
        let db = tpch::gen::generate(sf, 42)?;
        let session = Engine::new(
            db,
            EngineConfig::default().with_bloom_mode(mode).with_dop(4),
        )
        .connect();
        let t = std::time::Instant::now();
        let result = session.run_sql(&sql)?;
        let ms = t.elapsed().as_secs_f64() * 1e3;
        println!(
            "== {mode:?}: {} rows in {ms:.1} ms (plan {:.1} ms) ==",
            result.chunk.rows(),
            result.optimized.stats.planning_ms
        );
        println!("{}", result.explain());
    }
    Ok(())
}
