//! A look inside the two-phase optimizer: candidate marking, Δ collection,
//! and the costed Bloom-filter sub-plans — the paper's Examples 3.1–3.4 on
//! its running example.
//!
//! Run with: `cargo run --release --example optimizer_explain`

use bfq::core::candidates::mark_candidates;
use bfq::core::costing::{initial_plan_lists, required_cols_per_rel};
use bfq::core::phase1::collect_deltas;
use bfq::core::synth::running_example;
use bfq::core::{optimize_bare_block, BloomMode, OptimizerConfig};
use bfq::cost::CostModel;
use bfq::prelude::*;
use std::collections::HashMap;

fn main() -> Result<()> {
    let mut fx = running_example(1.0);
    let mut config = OptimizerConfig::with_mode(BloomMode::Cbo);
    config.bf_min_apply_rows = 100.0;
    let est = fx.estimator();

    // Example 3.1: marking Bloom filter candidates.
    let mut cands = mark_candidates(&fx.block, &est, &config);
    println!("## Phase 0 — candidates (paper Example 3.1)");
    for c in &cands {
        println!(
            "  BFC on {}: apply col {}, build col {} (rel {})",
            fx.block.rel(c.apply_rel).alias,
            c.apply_col,
            c.build_col,
            fx.block.rel(c.build_rel).alias
        );
    }

    // Example 3.2: first bottom-up pass populates Δ.
    let p1 = collect_deltas(&fx.block, &est, &mut cands, &config);
    println!("\n## Phase 1 — Δ collection (paper Example 3.2)");
    println!("  pairs visited: {}", p1.pairs_visited);
    for c in &cands {
        println!("  {}: Δ = {:?}", fx.block.rel(c.apply_rel).alias, c.deltas);
    }

    // Example 3.3: costed Bloom filter scan sub-plans.
    let model = CostModel::new(config.dop);
    let required = required_cols_per_rel(&fx.block, &[]);
    let mut next_filter = 0;
    let lists = initial_plan_lists(
        &fx.block,
        &est,
        &model,
        &config,
        &cands,
        &required,
        &HashMap::new(),
        None,
        &mut next_filter,
    )?;
    println!("\n## Costing — plan lists per relation (paper Example 3.3)");
    for (rel, list) in lists.iter().enumerate() {
        println!("  {}:", fx.block.rel(rel).alias);
        for sp in list.plans() {
            let deltas: Vec<String> = sp
                .pending
                .iter()
                .map(|p| format!("{:?}", p.bf.delta))
                .collect();
            println!(
                "    rows={:>9.0} cost={:>10.1} bloom δ={}",
                sp.rows,
                sp.cost.total,
                if deltas.is_empty() {
                    "-".into()
                } else {
                    deltas.join(",")
                }
            );
        }
    }
    drop(est);

    // Example 3.4 / Figure 4: the winning plan.
    let catalog = fx.catalog.clone();
    let out = optimize_bare_block(&fx.block, &mut fx.bindings, &catalog, &config)?;
    println!("\n## Phase 2 — winning plan (paper Example 3.4 / Figure 4b)");
    println!("{}", out.plan.explain(&|c| c.to_string()));
    println!(
        "stats: {} DP pairs, {} sub-plans generated, {} kept",
        out.stats.phase2.pairs, out.stats.phase2.generated, out.stats.phase2.kept
    );

    // Execute the winning plan and show the chunk-skipping counters the
    // per-chunk zone-map/Bloom index records for every scan (bfq-index).
    let exec = bfq::exec::execute_plan_opts(
        &out.plan,
        std::sync::Arc::new(catalog),
        config.dop,
        config.index_mode,
    )?;
    let p = exec.stats.prune_totals();
    println!(
        "## Executor — chunk-index data skipping ({})",
        config.index_mode
    );
    println!(
        "result rows: {}   chunks considered: {}   skipped: {} (zonemap {}, bloom {}, filterkeys {}, filtersummary {}), {} rows pruned",
        exec.chunk.rows(),
        p.chunks,
        p.skipped(),
        p.skipped_zonemap,
        p.skipped_bloom,
        p.skipped_rfilter,
        p.skipped_rfsummary,
        p.rows_pruned
    );
    Ok(())
}
