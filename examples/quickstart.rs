//! Quickstart: generate a small TPC-H instance and run a query with
//! Bloom-filter-aware cost-based optimization.
//!
//! Run with: `cargo run --release --example quickstart`

use bfq::prelude::*;
use bfq::tpch;

fn main() -> Result<()> {
    // 1. Generate a deterministic TPC-H database (SF 0.01 ≈ 10 MB).
    let db = tpch::gen::generate(0.01, 42)?;
    println!("generated TPC-H SF 0.01:");
    for meta in db.catalog.tables() {
        println!("  {:<10} {:>9} rows", meta.name, meta.stats.rows as u64);
    }

    // 2. Build the shared engine with BF-CBO enabled (the paper's
    //    contribution) and open a connection.
    let engine = Engine::new(
        db,
        EngineConfig::default()
            .with_bloom_mode(BloomMode::Cbo)
            .with_dop(4),
    );
    let session = engine.connect();

    // 3. Run a join query. The optimizer will consider Bloom-filter scan
    //    sub-plans; the plan shows where filters are built and applied.
    let sql = "
        select n_name, count(*) as orders
        from customer, orders, nation
        where c_custkey = o_custkey
          and c_nationkey = n_nationkey
          and n_name in ('GERMANY', 'FRANCE')
          and o_orderdate >= date '1995-01-01'
        group by n_name
        order by orders desc";
    let result = session.run_sql(sql)?;

    println!("\nplan:\n{}", result.explain());
    println!("columns: {:?}", result.column_names);
    for i in 0..result.chunk.rows() {
        let row: Vec<String> = result.chunk.row(i).iter().map(|d| d.to_string()).collect();
        println!("  {}", row.join(" | "));
    }
    println!(
        "\noptimizer: {} candidates, {} CBO filters, {} post filters, {:.2} ms planning",
        result.optimized.stats.candidates,
        result.optimized.stats.cbo_filters,
        result.optimized.stats.post_filters,
        result.optimized.stats.planning_ms
    );

    // 4. Re-running the identical statement hits the shared plan cache.
    let again = session.run_sql(sql)?;
    let cache = engine.cache_stats();
    println!(
        "re-run: cache_hit={} (engine counters: {} hits / {} misses)",
        again.cache_hit, cache.hits, cache.misses
    );
    Ok(())
}
