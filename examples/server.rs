//! The network front-end: `bfq-server` serving one shared `Engine` over
//! TCP, with prepared statements, streaming results, admission control,
//! and out-of-band cancellation.
//!
//! Run with: `cargo run --release --example server`

use bfq::prelude::*;
use bfq::tpch;
use bfq_server::{Client, Server, ServerConfig};

fn main() -> Result<()> {
    // One engine, served to many clients. `addr: 127.0.0.1:0` binds an
    // ephemeral port; production configs pin one.
    let db = tpch::gen::generate(0.01, 42)?;
    let engine = Engine::new(db, EngineConfig::default().with_dop(4));
    let server = Server::start(
        engine,
        ServerConfig {
            workers: 4,
            queue_depth: 8,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    println!("serving on {addr}");

    // A blocking client: one TCP connection = one session.
    let mut client = Client::connect(addr).expect("connect");
    println!(
        "connected: conn_id={} protocol v{}",
        client.conn_id(),
        bfq_server::PROTOCOL_VERSION
    );

    // Plain queries return a fully-gathered RowSet.
    let rows = client
        .query("select count(*), min(o_orderdate) from orders")
        .expect("query");
    println!("orders: {:?} (columns {:?})", rows.rows[0], rows.columns);

    // Session knobs travel as SET statements; `statement_timeout` arms a
    // per-query deadline, `memory_budget_rows` caps operator state.
    client.set("statement_timeout", "5000").expect("set");
    client.set("memory_budget_rows", "10000000").expect("set");

    // Prepared statements live server-side; execute streams chunks back.
    let info = client
        .prepare(
            "top_prio",
            "select o_orderpriority, count(*) as n from orders \
             where o_orderkey < ? group by o_orderpriority order by n desc",
        )
        .expect("prepare");
    println!("prepared {:?}: {} params", info.name, info.params);
    let mut stream = client
        .execute_stream("top_prio", &[Datum::Int(5000)])
        .expect("execute");
    while let Some(chunk) = stream.next_chunk().expect("chunk") {
        for row in chunk {
            println!("  {row:?}");
        }
    }
    drop(stream);

    // Out-of-band cancellation: any connection holding the victim's
    // (conn_id, secret) pair can interrupt its in-flight query. Here the
    // target is idle, so the cancel reports "nothing to do".
    let mut other = Client::connect(addr).expect("connect");
    let fired = other
        .cancel(client.conn_id(), client.secret())
        .expect("cancel");
    println!("cancel of an idle session fired: {fired}");

    // The metrics command exposes engine + server counters in one scrape.
    let metrics = client.metrics().expect("metrics");
    let served: Vec<&str> = metrics
        .lines()
        .filter(|l| l.starts_with("bfq_server_queries") || l.starts_with("bfq_queries"))
        .collect();
    println!("{}", served.join("\n"));

    other.quit().expect("quit");
    client.quit().expect("quit");
    server.shutdown();
    Ok(())
}
