#!/usr/bin/env python3
"""Perf-regression gate: compare a fresh BENCH_<name>.json against the
committed baseline in bench/baselines/.

Structural metrics (chunk counts, skip fractions, filters placed) are
deterministic for a fixed generator seed, so they gate at a tight relative
tolerance. `*_checksum` metrics are result-correctness checks and gate
EXACTLY (zero tolerance). `*_ms` latency metrics are reported for trending
but never gated — shared CI runners are too noisy for a hard latency bar.

Usage: scripts/bench_gate.py <fresh.json> <baseline.json> [rel_tol]
Exit code 0 = pass, 1 = regression / metric drift.
"""

import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    return doc.get("metrics", {})


def main():
    if len(sys.argv) < 3:
        print(__doc__)
        return 1
    fresh = load(sys.argv[1])
    base = load(sys.argv[2])
    rel_tol = float(sys.argv[3]) if len(sys.argv) > 3 else 0.10
    abs_tol = 1e-9
    failures = []
    for key, expected in sorted(base.items()):
        got = fresh.get(key)
        if key.endswith("_ms"):
            print(f"  (trend) {key}: baseline {expected:.3f} -> {got if got is not None else 'MISSING'}")
            continue
        if got is None:
            failures.append(f"{key}: missing from fresh run (baseline {expected})")
            continue
        if key.endswith("_checksum"):
            # Result checksums are correctness, not perf: exact match only.
            if got != expected:
                failures.append(f"{key}: {got} != baseline {expected} (exact-match metric)")
            else:
                print(f"  ok      {key}: {got} (exact)")
            continue
        limit = max(abs(expected) * rel_tol, abs_tol)
        if abs(got - expected) > limit:
            failures.append(f"{key}: {got} vs baseline {expected} (tolerance ±{limit:.4g})")
        else:
            print(f"  ok      {key}: {got} (baseline {expected})")
    if failures:
        print("\nPERF GATE FAILED:")
        for f in failures:
            print(f"  {f}")
        print("\nIf the change is intentional, refresh the baseline (see DESIGN.md).")
        return 1
    print("\nperf gate: all structural metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
